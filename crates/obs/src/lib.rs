//! `rexec-obs` — lightweight observability for the rexec workspace.
//!
//! Zero external dependencies beyond the workspace's serde stack: RAII
//! [`Span`] timers, [`Counter`]s and [`Gauge`]s, a log-bucketed
//! [`HistogramSketch`], and a [`Registry`] whose snapshots serialize in a
//! stable order. Parallel workers record into thread-local [`Shard`]s and
//! merge them deterministically (the `sim::stats::Stats::merge` pattern),
//! so counter and histogram aggregates are byte-identical for a fixed
//! seed regardless of `RAYON_NUM_THREADS`.
//!
//! Determinism contract:
//! - **Counters, histogram sketches, shards** — exact `u64` counts,
//!   commutative merges: identical across thread counts and merge orders.
//! - **Gauges, span timings** — wall-clock values, reported in separate
//!   snapshot sections and *excluded* from the guarantee.
//!
//! Hot-path usage goes through the caching macros, which register once
//! per call site and then touch only a relaxed atomic:
//!
//! ```
//! rexec_obs::counter!("solver.pairs_evaluated").incr();
//! let _timer = rexec_obs::span!("solver.solve"); // no-op unless enabled
//! ```
//!
//! Span timing is off by default (`Span` never reads the clock when
//! disabled); enable it with [`set_spans_enabled`] when timings are
//! wanted, e.g. when the CLI is asked for a `--metrics` snapshot.

mod export;
mod metrics;
mod registry;
mod shard;
mod sketch;
mod timeline;
mod window;

pub use export::{check_prometheus_text, prometheus_text, snapshot_diff};
pub use metrics::{Counter, Gauge, Span, SpanStat, Toggle};
pub use registry::{global, Registry};
pub use shard::Shard;
pub use sketch::HistogramSketch;
pub use timeline::{
    chrome_trace_from_events, chrome_trace_json, set_timeline_capacity, set_timeline_enabled,
    timeline_drain, timeline_enabled, validate_chrome_trace, TimelineEvent, TraceError,
    DEFAULT_RING_CAPACITY,
};
pub use window::{RollingWindow, WindowStats};

/// Turns span timing on or off in the [`global`] registry.
pub fn set_spans_enabled(on: bool) {
    global().set_spans_enabled(on);
}

/// Whether span timing is enabled in the [`global`] registry.
pub fn spans_enabled() -> bool {
    global().spans_enabled()
}

/// Zeroes every metric in the [`global`] registry (registrations remain).
pub fn reset() {
    global().reset();
}

/// Serializes the [`global`] registry's full snapshot as pretty JSON.
pub fn snapshot_json() -> String {
    serde_json::to_string_pretty(&global().snapshot_value())
        .expect("registry snapshot serializes infallibly")
}

/// Global counter handle, registered once per call site.
///
/// `$name` must be constant at the call site: the handle is cached in a
/// `static`, so a varying name would keep reusing the first registration.
/// For dynamic names call [`global()`]`.counter(name)` directly.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Global gauge handle, registered once per call site (constant `$name`;
/// see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Global histogram-sketch handle, registered once per call site
/// (constant `$name`; see [`counter!`]).
#[macro_export]
macro_rules! sketch {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::HistogramSketch>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().sketch($name))
    }};
}

/// RAII span timer over the rest of the scope (constant `$name`; see
/// [`counter!`]). No-op — never reads the clock — while span timing is
/// disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::SpanStat>> =
            ::std::sync::OnceLock::new();
        $crate::global().span_for(
            HANDLE.get_or_init(|| $crate::global().span_stat($name)),
            $name,
        )
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_register_and_record_in_the_global_registry() {
        counter!("obs.test.counter").add(2);
        counter!("obs.test.counter").incr();
        assert_eq!(crate::global().counter("obs.test.counter").get(), 3);

        gauge!("obs.test.gauge").set(0.5);
        assert_eq!(crate::global().gauge("obs.test.gauge").get(), 0.5);

        sketch!("obs.test.sketch").record(1.0);
        assert_eq!(crate::global().sketch("obs.test.sketch").count(), 1);
    }

    #[test]
    fn span_macro_honours_the_global_toggle() {
        {
            let s = span!("obs.test.span");
            assert!(!s.is_active());
        }
        assert_eq!(crate::global().span_stat("obs.test.span").count(), 0);
    }

    #[test]
    fn snapshot_json_is_valid_json() {
        counter!("obs.test.snapshot").incr();
        let json = crate::snapshot_json();
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        assert!(matches!(value, serde::Value::Object(_)));
    }
}
