//! Span timeline profiler: per-thread lock-free event rings with a
//! Chrome trace-event JSON exporter.
//!
//! When the timeline is enabled (see [`crate::set_timeline_enabled`]),
//! every RAII [`Span`](crate::Span) additionally records one *complete
//! event* — name, thread, begin/end wall timestamps, a per-thread logical
//! sequence number, and the ID of the enclosing span — into its thread's
//! [`EventRing`]. The ring is a bounded single-producer/single-consumer
//! queue: the owning thread pushes without locks or atomic RMW beyond a
//! store, and the exporter drains under a consumer-side mutex. A full
//! ring drops the newest events and counts them (`dropped_events` in the
//! export, `obs.timeline.dropped` in the registry) instead of blocking
//! the traced code or silently losing data.
//!
//! Determinism contract: wall timestamps (`ts`/`dur`) are wall-clock and
//! excluded from any byte-identity guarantee. Everything *structural* is
//! deterministic for a deterministic run on a fixed thread count: events
//! export sorted by `(tid, seq)`, the logical sequence is a per-thread
//! monotone counter, and parent links reproduce the nesting exactly.
//! [`chrome_trace_from_events`] is a pure function of the event list, so
//! the serialized form of a hand-built timeline is byte-stable (the
//! golden test in `tests/chrome_trace.rs` pins it).

use serde::{Serialize, Value};
use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One finished span on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Span name (the `span!` site name, or a dynamic `Registry::span`
    /// name such as `experiment.F4`).
    pub name: String,
    /// Timeline-assigned thread ID (registration order, starting at 0).
    pub tid: u64,
    /// Unique span ID (process-wide).
    pub id: u64,
    /// Enclosing span's ID on the same thread, if any.
    pub parent: Option<u64>,
    /// Begin timestamp, nanoseconds since the process trace epoch.
    pub begin_ns: u64,
    /// End timestamp, nanoseconds since the process trace epoch.
    pub end_ns: u64,
    /// Per-thread logical sequence number (begin order): deterministic
    /// for a deterministic run, unlike the wall timestamps.
    pub seq: u64,
}

/// Bounded single-producer/single-consumer event ring.
///
/// The *owning thread* is the only producer ([`push`](Self::push)); any
/// thread may drain, but drains are serialized by the [`Timeline`]'s
/// consumer lock. A full ring counts the rejected event in `dropped`
/// rather than overwriting history — the oldest (outermost, usually most
/// interesting) spans survive.
pub struct EventRing {
    slots: Box<[UnsafeCell<MaybeUninit<TimelineEvent>>]>,
    /// Next write position (monotone; producer-owned, consumer reads).
    head: AtomicUsize,
    /// Next read position (monotone; consumer-owned, producer reads).
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slot access is coordinated by the head/tail indices — the
// producer only writes slots in `[head, tail + capacity)`, the consumer
// only reads slots in `[tail, head)`, and both advance their index with
// Release stores after the access (matched by Acquire loads).
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        EventRing {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: appends `event`, or counts it as dropped when the
    /// ring is full. Must only be called by the owning thread.
    fn push(&self, event: TimelineEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.capacity() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[head % self.capacity()];
        // SAFETY: `[tail, head)` excludes this slot, so no consumer reads
        // it; we are the single producer, so no other writer touches it.
        unsafe { (*slot.get()).write(event) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: takes every currently visible event. Callers must
    /// hold the timeline's consumer lock (a second concurrent drain of
    /// the same ring would race on `tail`).
    fn drain(&self) -> Vec<TimelineEvent> {
        let mut out = vec![];
        let mut tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        while tail != head {
            let slot = &self.slots[tail % self.capacity()];
            // SAFETY: `[tail, head)` was published by the producer's
            // Release store and is not touched again until we advance
            // `tail` past it.
            out.push(unsafe { (*slot.get()).assume_init_read() });
            tail = tail.wrapping_add(1);
            self.tail.store(tail, Ordering::Release);
        }
        out
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for EventRing {
    fn drop(&mut self) {
        // Drop any undrained events (they own heap strings).
        self.drain();
    }
}

/// Per-thread timeline state: the event ring plus the open-span stack
/// that provides parent IDs and the logical sequence counter.
struct ThreadState {
    tid: u64,
    ring: Arc<EventRing>,
    /// IDs of the currently open spans, innermost last.
    stack: std::cell::RefCell<Vec<u64>>,
    seq: std::cell::Cell<u64>,
}

/// Process-wide timeline: the toggle, the trace epoch, and the registry
/// of per-thread rings.
struct Timeline {
    enabled: crate::Toggle,
    epoch: OnceLock<Instant>,
    next_tid: AtomicU64,
    next_span_id: AtomicU64,
    capacity: AtomicUsize,
    /// Every thread's ring, in registration order. Consumer-side lock:
    /// drains and registrations serialize here; producers never touch it
    /// after their first event.
    rings: Mutex<Vec<Arc<EventRing>>>,
}

/// Default per-thread ring capacity (events). At ~100 bytes per event
/// this is ~1.6 MiB per traced thread.
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

static TIMELINE: OnceLock<Timeline> = OnceLock::new();

fn timeline() -> &'static Timeline {
    TIMELINE.get_or_init(|| Timeline {
        enabled: crate::Toggle::new(false),
        epoch: OnceLock::new(),
        next_tid: AtomicU64::new(0),
        next_span_id: AtomicU64::new(0),
        capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
        rings: Mutex::new(vec![]),
    })
}

thread_local! {
    static THREAD_STATE: ThreadState = {
        let tl = timeline();
        let ring = Arc::new(EventRing::new(tl.capacity.load(Ordering::Relaxed)));
        let tid = tl.next_tid.fetch_add(1, Ordering::Relaxed);
        tl.rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        ThreadState {
            tid,
            ring,
            stack: std::cell::RefCell::new(vec![]),
            seq: std::cell::Cell::new(0),
        }
    };
}

/// Turns timeline recording on or off. Enabling pins the trace epoch on
/// first use; disabling stops recording but keeps already-captured
/// events for export.
pub fn set_timeline_enabled(on: bool) {
    let tl = timeline();
    if on {
        tl.epoch.get_or_init(Instant::now);
    }
    tl.enabled.set(on);
}

/// Whether timeline recording is on.
pub fn timeline_enabled() -> bool {
    timeline().enabled.get()
}

/// Sets the per-thread ring capacity for threads that have not recorded
/// yet (existing rings keep their size). Call before enabling.
pub fn set_timeline_capacity(events: usize) {
    timeline().capacity.store(events.max(1), Ordering::Relaxed);
}

/// Nanoseconds since the trace epoch (0 before the timeline was first
/// enabled).
fn now_ns() -> u64 {
    match timeline().epoch.get() {
        Some(epoch) => u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
        None => 0,
    }
}

/// The begin half of a timeline span, carried inside the RAII
/// [`Span`](crate::Span); [`finish`](Self::finish) records the complete
/// event on drop.
#[derive(Debug)]
pub struct TimelineSpan {
    name: String,
    tid: u64,
    id: u64,
    parent: Option<u64>,
    begin_ns: u64,
    seq: u64,
}

/// Begins a timeline span, if the timeline is enabled. The returned
/// half-event must be [`finish`](TimelineSpan::finish)ed on the *same
/// thread* (RAII span usage guarantees this; a span moved across threads
/// records on the destination thread and is dropped from the origin's
/// open-span stack on its next pop).
pub fn timeline_begin(name: &str) -> Option<TimelineSpan> {
    if !timeline_enabled() {
        return None;
    }
    let id = timeline().next_span_id.fetch_add(1, Ordering::Relaxed);
    THREAD_STATE.with(|ts| {
        let parent = ts.stack.borrow().last().copied();
        ts.stack.borrow_mut().push(id);
        let seq = ts.seq.get();
        ts.seq.set(seq + 1);
        Some(TimelineSpan {
            name: name.to_string(),
            tid: ts.tid,
            id,
            parent,
            begin_ns: now_ns(),
            seq,
        })
    })
}

impl TimelineSpan {
    /// Ends the span: pops it from the open-span stack and pushes the
    /// complete event into the current thread's ring.
    pub fn finish(self) {
        let end_ns = now_ns();
        THREAD_STATE.with(|ts| {
            let mut stack = ts.stack.borrow_mut();
            // RAII scoping makes this a plain pop; be tolerant of spans
            // that were moved across threads or dropped out of order.
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                stack.retain(|&open| open != self.id);
            }
            drop(stack);
            ts.ring.push(TimelineEvent {
                name: self.name,
                tid: self.tid,
                id: self.id,
                parent: self.parent,
                begin_ns: self.begin_ns,
                end_ns,
                seq: self.seq,
            });
        });
    }
}

/// Drains every thread's ring: all completed events recorded since the
/// last drain, sorted by `(tid, seq)`, plus the total number of dropped
/// events (cumulative over the process).
pub fn timeline_drain() -> (Vec<TimelineEvent>, u64) {
    let tl = timeline();
    let rings = tl.rings.lock().unwrap_or_else(|e| e.into_inner());
    let mut events = vec![];
    let mut dropped = 0;
    for ring in rings.iter() {
        events.extend(ring.drain());
        dropped += ring.dropped();
    }
    drop(rings);
    events.sort_by_key(|e| (e.tid, e.seq));
    if dropped > 0 {
        // Surface ring overflow in the metrics snapshot too.
        let c = crate::global().counter("obs.timeline.dropped");
        let cur = c.get();
        if dropped > cur {
            c.add(dropped - cur);
        }
    }
    (events, dropped)
}

/// Renders the current timeline as Chrome trace-event JSON (drains the
/// rings): the object form `{"traceEvents": [...], ...}` that
/// `chrome://tracing` and Perfetto load directly.
pub fn chrome_trace_json() -> String {
    let (events, dropped) = timeline_drain();
    chrome_trace_from_events(&events, dropped)
}

/// Pure renderer: Chrome trace-event JSON for an explicit event list.
/// Byte-stable for a fixed input — the JSON depends only on `events`
/// (already in the desired order) and `dropped`.
///
/// Each event becomes a complete (`"ph":"X"`) slice with microsecond
/// `ts`/`dur` (3 decimal places preserve the nanosecond grid) and the
/// structural fields (`id`, `parent`, `seq`) under `args`.
pub fn chrome_trace_from_events(events: &[TimelineEvent], dropped: u64) -> String {
    let traced: Vec<Value> = events
        .iter()
        .map(|e| {
            let mut args = BTreeMap::new();
            args.insert("id".to_string(), e.id.to_value());
            if let Some(parent) = e.parent {
                args.insert("parent".to_string(), parent.to_value());
            }
            args.insert("seq".to_string(), e.seq.to_value());
            let mut m = BTreeMap::new();
            m.insert("name".to_string(), e.name.to_value());
            m.insert("cat".to_string(), "span".to_value());
            m.insert("ph".to_string(), "X".to_value());
            m.insert("ts".to_string(), micros_value(e.begin_ns));
            m.insert(
                "dur".to_string(),
                micros_value(e.end_ns.saturating_sub(e.begin_ns)),
            );
            m.insert("pid".to_string(), 1u64.to_value());
            m.insert("tid".to_string(), e.tid.to_value());
            m.insert("args".to_string(), Value::Object(args));
            Value::Object(m)
        })
        .collect();

    let mut other = BTreeMap::new();
    other.insert("dropped_events".to_string(), dropped.to_value());
    other.insert("tool".to_string(), "rexec-obs".to_value());

    let mut doc = BTreeMap::new();
    doc.insert("displayTimeUnit".to_string(), "ms".to_value());
    doc.insert("otherData".to_string(), Value::Object(other));
    doc.insert("traceEvents".to_string(), Value::Array(traced));
    serde_json::to_string_pretty(&Value::Object(doc)).expect("trace serializes infallibly")
}

/// Nanoseconds as a microsecond `Value` on a fixed 3-decimal grid, so
/// serialization is stable (`1234` ns → `1.234`).
fn micros_value(ns: u64) -> Value {
    if ns.is_multiple_of(1000) {
        (ns / 1000).to_value()
    } else {
        (ns as f64 / 1000.0).to_value()
    }
}

/// A structural problem found by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError(pub String);

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TraceError {}

/// Strict structural validator for exported traces: parses the JSON,
/// checks every event is a well-formed `"X"` slice, and checks the
/// nesting invariants — every `parent` refers to an event on the same
/// thread whose `[ts, ts+dur]` interval contains the child's. Returns
/// the number of events.
pub fn validate_chrome_trace(json: &str) -> Result<usize, TraceError> {
    let doc: Value =
        serde_json::from_str(json).map_err(|e| TraceError(format!("invalid JSON: {e}")))?;
    let events = match doc.get("traceEvents") {
        Some(Value::Array(a)) => a,
        _ => return Err(TraceError("missing traceEvents array".into())),
    };
    struct Ev {
        tid: u64,
        begin: f64,
        end: f64,
    }
    let mut by_id: BTreeMap<u64, Ev> = BTreeMap::new();
    let mut parents: Vec<(u64, u64)> = vec![];
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| TraceError(format!("event {i}: missing {key}")))
        };
        let num = |key: &str| -> Result<f64, TraceError> {
            match field(key)? {
                Value::Number(n) => Ok(n.as_f64()),
                _ => Err(TraceError(format!("event {i}: {key} is not a number"))),
            }
        };
        match field("ph")? {
            Value::String(ph) if ph == "X" => {}
            other => return Err(TraceError(format!("event {i}: ph is {other:?}, not \"X\""))),
        }
        match field("name")? {
            Value::String(name) if !name.is_empty() => {}
            _ => return Err(TraceError(format!("event {i}: empty or missing name"))),
        }
        let ts = num("ts")?;
        let dur = num("dur")?;
        if !(ts.is_finite() && dur.is_finite() && ts >= 0.0 && dur >= 0.0) {
            return Err(TraceError(format!("event {i}: bad ts/dur {ts}/{dur}")));
        }
        let tid = num("tid")? as u64;
        let args = field("args")?;
        let arg_u64 = |key: &str| match args.get(key) {
            Some(Value::Number(n)) => n.as_u64(),
            _ => None,
        };
        let id = arg_u64("id").ok_or_else(|| TraceError(format!("event {i}: missing args.id")))?;
        if by_id
            .insert(
                id,
                Ev {
                    tid,
                    begin: ts,
                    end: ts + dur,
                },
            )
            .is_some()
        {
            return Err(TraceError(format!("event {i}: duplicate span id {id}")));
        }
        if let Some(parent) = arg_u64("parent") {
            parents.push((id, parent));
        }
    }
    for (child, parent) in parents {
        let c = &by_id[&child];
        let p = by_id
            .get(&parent)
            .ok_or_else(|| TraceError(format!("span {child}: parent {parent} not in trace")))?;
        if p.tid != c.tid {
            return Err(TraceError(format!(
                "span {child}: parent {parent} is on tid {}, child on tid {}",
                p.tid, c.tid
            )));
        }
        if c.begin < p.begin || c.end > p.end {
            return Err(TraceError(format!(
                "span {child} [{}, {}] not nested inside parent {parent} [{}, {}]",
                c.begin, c.end, p.begin, p.end
            )));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, tid: u64, id: u64, parent: Option<u64>, range: (u64, u64)) -> TimelineEvent {
        TimelineEvent {
            name: name.to_string(),
            tid,
            id,
            parent,
            begin_ns: range.0,
            end_ns: range.1,
            seq: id,
        }
    }

    #[test]
    fn ring_preserves_fifo_and_counts_drops() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(ev("e", 0, i, None, (i, i + 1)));
        }
        assert_eq!(ring.dropped(), 2);
        let drained = ring.drain();
        assert_eq!(
            drained.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "oldest events survive, newest are dropped"
        );
        // The ring is reusable after a drain.
        ring.push(ev("e", 0, 9, None, (9, 10)));
        assert_eq!(ring.drain().len(), 1);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn ring_drains_concurrently_with_production() {
        let ring = Arc::new(EventRing::new(1024));
        let producer = Arc::clone(&ring);
        let handle = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                producer.push(ev("e", 0, i, None, (i, i + 1)));
            }
        });
        let mut seen = vec![];
        loop {
            seen.extend(ring.drain());
            if handle.is_finished() {
                break;
            }
        }
        handle.join().unwrap();
        seen.extend(ring.drain());
        assert_eq!(seen.len() as u64 + ring.dropped(), 10_000);
        // FIFO per producer: ids strictly increase.
        assert!(seen.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn chrome_export_is_byte_stable_and_validates() {
        let events = vec![
            ev("outer", 0, 0, None, (0, 5000)),
            ev("inner", 0, 1, Some(0), (1000, 2500)),
            ev("other-thread", 1, 2, None, (0, 1234)),
        ];
        let a = chrome_trace_from_events(&events, 7);
        let b = chrome_trace_from_events(&events, 7);
        assert_eq!(a, b, "pure renderer must be byte-stable");
        assert_eq!(validate_chrome_trace(&a).unwrap(), 3);
        assert!(a.contains("\"dropped_events\": 7"));
        assert!(a.contains("\"ph\": \"X\""));
        // 1234 ns = 1.234 us: the fractional grid is preserved.
        assert!(a.contains("1.234"));
    }

    #[test]
    fn validator_rejects_broken_nesting() {
        let ok = chrome_trace_from_events(&[ev("a", 0, 0, None, (0, 10))], 0);
        assert!(validate_chrome_trace(&ok).is_ok());

        // Child extends past its parent.
        let bad = chrome_trace_from_events(
            &[
                ev("outer", 0, 0, None, (0, 1000)),
                ev("inner", 0, 1, Some(0), (500, 2000)),
            ],
            0,
        );
        assert!(validate_chrome_trace(&bad)
            .unwrap_err()
            .0
            .contains("nested"));

        // Parent on a different thread.
        let cross = chrome_trace_from_events(
            &[
                ev("outer", 0, 0, None, (0, 1000)),
                ev("inner", 1, 1, Some(0), (100, 200)),
            ],
            0,
        );
        assert!(validate_chrome_trace(&cross).unwrap_err().0.contains("tid"));

        // Dangling parent reference.
        let dangling = chrome_trace_from_events(&[ev("a", 0, 1, Some(99), (0, 10))], 0);
        assert!(validate_chrome_trace(&dangling)
            .unwrap_err()
            .0
            .contains("not in trace"));

        assert!(validate_chrome_trace("{not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }

    #[test]
    fn begin_finish_records_nesting_on_this_thread() {
        set_timeline_enabled(true);
        let outer = timeline_begin("test.outer").unwrap();
        let inner = timeline_begin("test.inner").unwrap();
        let inner_id = inner.id;
        let outer_id = outer.id;
        inner.finish();
        outer.finish();
        set_timeline_enabled(false);
        let (events, _) = timeline_drain();
        let inner_ev = events.iter().find(|e| e.id == inner_id).unwrap();
        let outer_ev = events.iter().find(|e| e.id == outer_id).unwrap();
        assert_eq!(inner_ev.parent, Some(outer_id));
        assert_eq!(outer_ev.parent, None);
        assert_eq!(inner_ev.tid, outer_ev.tid);
        assert!(inner_ev.begin_ns >= outer_ev.begin_ns);
        assert!(inner_ev.end_ns <= outer_ev.end_ns);
        assert!(inner_ev.seq > outer_ev.seq);
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        set_timeline_enabled(false);
        assert!(timeline_begin("test.disabled").is_none());
    }
}
