//! Exporters over the registry snapshot: Prometheus text exposition, a
//! strict in-repo format checker for it, and a snapshot differ for
//! before/after accounting.
//!
//! The exposition is rendered straight from the live [`Registry`] in a
//! fixed section order (counters, gauges, histogram summaries, span
//! summaries), each section alphabetical, with label sets sorted — so
//! the output is stable across runs for identical metric values, and
//! the counter/histogram lines inherit the registry's thread-count
//! byte-identity guarantee.

use crate::metrics::SpanStat;
use crate::registry::Registry;
use crate::sketch::HistogramSketch;
use serde::{Number, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Prometheus metric-name prefix for everything this workspace exports.
const NAMESPACE: &str = "rexec_";

/// Maps a dotted registry name to a Prometheus metric name:
/// `bicrit.pairs_evaluated` → `rexec_bicrit_pairs_evaluated`. Any
/// character outside `[a-zA-Z0-9_:]` becomes `_`; a leading digit gets
/// an underscore prefix. Registry names must stay collision-free under
/// this mapping (they are: the workspace uses `[a-z0-9_.]` names).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(NAMESPACE.len() + name.len());
    out.push_str(NAMESPACE);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            if i == 0 && ch.is_ascii_digit() {
                out.push('_');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// A float in Prometheus sample syntax (`+Inf` / `-Inf` / `NaN`
/// spellings; integers render without a fraction).
fn prom_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn sketch_family(out: &mut String, name: &str, sketch: &HistogramSketch) {
    let fam = prom_name(name);
    let _ = writeln!(out, "# TYPE {fam} summary");
    if sketch.count() > 0 {
        // Label sets carry exactly one label here; keys within a set and
        // the quantile values themselves are emitted in sorted order.
        for q in [0.5, 0.9, 0.99] {
            if let Some(v) = sketch.quantile(q) {
                let _ = writeln!(out, "{fam}{{quantile=\"{q}\"}} {}", prom_value(v));
            }
        }
    }
    let _ = writeln!(out, "{fam}_count {}", sketch.count());
    if sketch.count() > 0 {
        let _ = writeln!(out, "# TYPE {fam}_min gauge");
        let _ = writeln!(out, "{fam}_min {}", prom_value(sketch.min()));
        let _ = writeln!(out, "# TYPE {fam}_max gauge");
        let _ = writeln!(out, "{fam}_max {}", prom_value(sketch.max()));
    }
}

fn span_family(out: &mut String, name: &str, stat: &SpanStat) {
    let fam = format!("{}_seconds", prom_name(name));
    let _ = writeln!(out, "# TYPE {fam} summary");
    let _ = writeln!(
        out,
        "{fam}_sum {}",
        prom_value(stat.total_nanos() as f64 / 1e9)
    );
    let _ = writeln!(out, "{fam}_count {}", stat.count());
    let _ = writeln!(out, "# TYPE {fam}_max gauge");
    let _ = writeln!(
        out,
        "{fam}_max {}",
        prom_value(stat.max_nanos() as f64 / 1e9)
    );
}

/// Renders the registry as Prometheus text exposition (format 0.0.4).
///
/// Counters become `<name>_total` counter families; gauges map
/// directly; histogram sketches become summaries (`quantile` labels
/// 0.5/0.9/0.99, plus `_count` and separate `_min`/`_max` gauges); span
/// stats become `<name>_seconds` summaries with `_sum`/`_count` and a
/// `_max` gauge. Output always passes [`check_prometheus_text`].
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let fam = format!("{}_total", prom_name(&name));
        let _ = writeln!(out, "# TYPE {fam} counter");
        let _ = writeln!(out, "{fam} {value}");
    }
    for (name, value) in registry.gauges() {
        let fam = prom_name(&name);
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {}", prom_value(value));
    }
    for (name, sketch) in registry.sketches() {
        sketch_family(&mut out, &name, &sketch);
    }
    for (name, stat) in registry.span_stats() {
        span_family(&mut out, &name, &stat);
    }
    out
}

// ---------------------------------------------------------------------
// Strict format checker
// ---------------------------------------------------------------------

fn is_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn is_sample_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Splits `name{a="x",b="y"}` into the name and its sorted label names,
/// validating label syntax, escaping, uniqueness and sort order.
fn parse_sample_name(s: &str, line_no: usize) -> Result<(String, Vec<String>), String> {
    let Some(brace) = s.find('{') else {
        if !is_metric_name(s) {
            return Err(format!("line {line_no}: invalid metric name `{s}`"));
        }
        return Ok((s.to_string(), vec![]));
    };
    let (name, rest) = s.split_at(brace);
    if !is_metric_name(name) {
        return Err(format!("line {line_no}: invalid metric name `{name}`"));
    }
    let Some(body) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        return Err(format!("line {line_no}: unbalanced label braces in `{s}`"));
    };
    let mut labels = vec![];
    let mut chars = body.chars().peekable();
    while chars.peek().is_some() {
        let label: String = chars.by_ref().take_while(|&c| c != '=').collect();
        if !is_label_name(&label) {
            return Err(format!("line {line_no}: invalid label name `{label}`"));
        }
        if chars.next() != Some('"') {
            return Err(format!("line {line_no}: label `{label}` value not quoted"));
        }
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some('"' | '\\' | 'n') => {}
                    other => {
                        return Err(format!(
                            "line {line_no}: bad escape {other:?} in label `{label}`"
                        ))
                    }
                },
                '\n' => {
                    return Err(format!("line {line_no}: newline in label `{label}`"));
                }
                _ => {}
            }
        }
        if !closed {
            return Err(format!("line {line_no}: unterminated value for `{label}`"));
        }
        labels.push(label);
        match chars.next() {
            None => break,
            Some(',') => {}
            Some(other) => {
                return Err(format!(
                    "line {line_no}: expected `,` between labels, found {other:?}"
                ))
            }
        }
    }
    for pair in labels.windows(2) {
        if pair[0] >= pair[1] {
            return Err(format!(
                "line {line_no}: label set not sorted/unique: `{}` before `{}`",
                pair[0], pair[1]
            ));
        }
    }
    Ok((name.to_string(), labels))
}

/// The metric family a sample belongs to: strips the conventional
/// `_total` / `_sum` / `_count` / `_bucket` suffixes.
fn family_of(sample_name: &str, declared: &BTreeMap<String, String>) -> String {
    if declared.contains_key(sample_name) {
        return sample_name.to_string();
    }
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(stem) = sample_name.strip_suffix(suffix) {
            if declared.contains_key(stem) {
                return stem.to_string();
            }
        }
    }
    sample_name.to_string()
}

/// Strict validator for Prometheus text exposition (format 0.0.4).
///
/// Enforces, beyond what lenient scrapers accept:
/// * every sample's family is declared by a preceding `# TYPE` line,
///   exactly one `# TYPE` per family, no family interleaving;
/// * `counter` samples use the `_total` suffix convention and have
///   non-negative values; `summary` families contain only `quantile`d
///   base samples, `_sum` and `_count`; `histogram` families require a
///   `+Inf` `_bucket`;
/// * metric and label names match the Prometheus grammar, label sets
///   are sorted and duplicate-free, values parse (`+Inf`/`-Inf`/`NaN`
///   allowed), and the text ends with a newline.
pub fn check_prometheus_text(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut finished: Vec<String> = vec![];
    let mut current: Option<String> = None;
    let mut saw_inf_bucket = false;

    let close_family = |current: &mut Option<String>,
                        finished: &mut Vec<String>,
                        saw_inf: &mut bool,
                        types: &BTreeMap<String, String>|
     -> Result<(), String> {
        if let Some(prev) = current.take() {
            if types.get(&prev).map(String::as_str) == Some("histogram") && !*saw_inf {
                return Err(format!("histogram `{prev}` has no +Inf bucket"));
            }
            finished.push(prev);
        }
        *saw_inf = false;
        Ok(())
    };

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {line_no}: TYPE without a name"))?;
                    let kind = parts
                        .next()
                        .ok_or_else(|| format!("line {line_no}: TYPE without a type"))?;
                    if !is_metric_name(name) {
                        return Err(format!("line {line_no}: invalid TYPE name `{name}`"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "summary" | "histogram" | "untyped"
                    ) {
                        return Err(format!("line {line_no}: unknown type `{kind}`"));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(format!("line {line_no}: duplicate TYPE for `{name}`"));
                    }
                    close_family(&mut current, &mut finished, &mut saw_inf_bucket, &types)?;
                    current = Some(name.to_string());
                }
                Some("HELP") => {
                    if parts.next().filter(|n| is_metric_name(n)).is_none() {
                        return Err(format!("line {line_no}: HELP without a valid name"));
                    }
                }
                _ => return Err(format!("line {line_no}: unknown comment directive")),
            }
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let mut fields = line.split_whitespace();
        let name_part = fields
            .next()
            .ok_or_else(|| format!("line {line_no}: empty sample"))?;
        let value = fields
            .next()
            .ok_or_else(|| format!("line {line_no}: sample without a value"))?;
        if !is_sample_value(value) {
            return Err(format!("line {line_no}: unparsable value `{value}`"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {line_no}: unparsable timestamp `{ts}`"));
            }
        }
        if fields.next().is_some() {
            return Err(format!("line {line_no}: trailing fields"));
        }

        let (name, labels) = parse_sample_name(name_part, line_no)?;
        let family = family_of(&name, &types);
        let Some(kind) = types.get(&family) else {
            return Err(format!(
                "line {line_no}: sample `{name}` has no preceding TYPE"
            ));
        };
        if current.as_deref() != Some(family.as_str()) {
            let msg = if finished.contains(&family) {
                format!("line {line_no}: family `{family}` is interleaved")
            } else {
                format!("line {line_no}: sample `{name}` outside its TYPE block")
            };
            return Err(msg);
        }
        match kind.as_str() {
            "counter" => {
                if !name.ends_with("_total") {
                    return Err(format!(
                        "line {line_no}: counter sample `{name}` lacks the _total suffix"
                    ));
                }
                if value.parse::<f64>().is_ok_and(|v| v < 0.0) {
                    return Err(format!("line {line_no}: negative counter `{name}`"));
                }
            }
            "summary" => {
                if name == family {
                    if labels != ["quantile"] {
                        return Err(format!(
                            "line {line_no}: summary sample `{name}` needs exactly a quantile label"
                        ));
                    }
                } else if name != format!("{family}_sum") && name != format!("{family}_count") {
                    return Err(format!(
                        "line {line_no}: `{name}` is not a valid summary series of `{family}`"
                    ));
                }
            }
            "histogram" if name == format!("{family}_bucket") => {
                if !labels.contains(&"le".to_string()) {
                    return Err(format!("line {line_no}: bucket without an `le` label"));
                }
                if name_part.contains("le=\"+Inf\"") {
                    saw_inf_bucket = true;
                }
            }
            _ => {}
        }
    }
    close_family(&mut current, &mut finished, &mut saw_inf_bucket, &types)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Snapshot diff
// ---------------------------------------------------------------------

fn as_u64(v: Option<&Value>) -> Option<u64> {
    match v {
        Some(Value::Number(n)) => n.as_u64(),
        _ => None,
    }
}

fn section<'a>(snap: &'a Value, key: &str) -> BTreeMap<String, &'a Value> {
    match snap.get(key) {
        Some(Value::Object(m)) => m.iter().map(|(k, v)| (k.clone(), v)).collect(),
        _ => BTreeMap::new(),
    }
}

/// Subtracts two registry snapshots (`after − before`), for before/after
/// accounting around a phase of a run. Both arguments are snapshot
/// `Value`s from [`Registry::snapshot_value`] or
/// [`Registry::deterministic_value`].
///
/// Semantics per section:
/// * **counters** — exact `u64` difference (a metric absent from
///   `before` counts as 0; saturates at 0 if `after` regressed, e.g.
///   across a reset);
/// * **histograms** — differences of the exact `count` / `ignored` /
///   `overflow` fields only (quantiles and extremes are not
///   subtractable and are omitted);
/// * **spans** — differences of `count` and `total_nanos`, with
///   `mean_nanos` recomputed from the diff (`max_nanos` is omitted);
/// * **gauges** — last-value observations are not subtractable: the
///   `after` value is reported unchanged.
pub fn snapshot_diff(before: &Value, after: &Value) -> Value {
    let mut counters = BTreeMap::new();
    let b = section(before, "counters");
    for (name, v) in section(after, "counters") {
        let prev = as_u64(b.get(&name).copied()).unwrap_or(0);
        let now = as_u64(Some(v)).unwrap_or(0);
        counters.insert(name, Value::Number(Number::U64(now.saturating_sub(prev))));
    }

    let mut histograms = BTreeMap::new();
    let b = section(before, "histograms");
    for (name, v) in section(after, "histograms") {
        let mut entry = BTreeMap::new();
        for field in ["count", "ignored", "overflow"] {
            let prev = as_u64(b.get(&name).copied().and_then(|p| p.get(field))).unwrap_or(0);
            let now = as_u64(v.get(field)).unwrap_or(0);
            entry.insert(
                field.to_string(),
                Value::Number(Number::U64(now.saturating_sub(prev))),
            );
        }
        histograms.insert(name, Value::Object(entry));
    }

    let mut spans = BTreeMap::new();
    let b = section(before, "spans");
    for (name, v) in section(after, "spans") {
        let prev = b.get(&name).copied();
        let count = as_u64(v.get("count"))
            .unwrap_or(0)
            .saturating_sub(as_u64(prev.and_then(|p| p.get("count"))).unwrap_or(0));
        let total = as_u64(v.get("total_nanos"))
            .unwrap_or(0)
            .saturating_sub(as_u64(prev.and_then(|p| p.get("total_nanos"))).unwrap_or(0));
        let mut entry = BTreeMap::new();
        entry.insert("count".to_string(), Value::Number(Number::U64(count)));
        entry.insert("total_nanos".to_string(), Value::Number(Number::U64(total)));
        entry.insert(
            "mean_nanos".to_string(),
            Value::Number(Number::U64(total.checked_div(count).unwrap_or(0))),
        );
        spans.insert(name, Value::Object(entry));
    }

    let gauges: BTreeMap<String, Value> = section(after, "gauges")
        .into_iter()
        .map(|(k, v)| (k, v.clone()))
        .collect();

    let mut doc = BTreeMap::new();
    doc.insert("counters".to_string(), Value::Object(counters));
    doc.insert("gauges".to_string(), Value::Object(gauges));
    doc.insert("histograms".to_string(), Value::Object(histograms));
    doc.insert("spans".to_string(), Value::Object(spans));
    Value::Object(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_of_a_populated_registry_passes_the_checker() {
        let r = Registry::new();
        r.counter("bicrit.pairs_evaluated").add(25);
        r.counter("sweep.point_errors").incr();
        r.gauge("runner.trials_per_sec").set(1.25e6);
        r.gauge("weird.value").set(f64::INFINITY);
        r.sketch("runner.attempts_per_trial").record(1.0);
        r.sketch("runner.attempts_per_trial").record(3.0);
        r.sketch("empty.sketch"); // registered, never recorded
        r.set_spans_enabled(true);
        drop(r.span("bicrit.solve"));

        let text = prometheus_text(&r);
        check_prometheus_text(&text).expect("strict checker must accept our own exposition");
        assert!(text.contains("# TYPE rexec_bicrit_pairs_evaluated_total counter"));
        assert!(text.contains("rexec_bicrit_pairs_evaluated_total 25"));
        assert!(text.contains("rexec_runner_trials_per_sec 1250000"));
        assert!(text.contains("rexec_weird_value +Inf"));
        assert!(text.contains("rexec_runner_attempts_per_trial{quantile=\"0.5\"}"));
        assert!(text.contains("rexec_runner_attempts_per_trial_count 2"));
        assert!(text.contains("rexec_empty_sketch_count 0"));
        assert!(!text.contains("rexec_empty_sketch_min"));
        assert!(text.contains("rexec_bicrit_solve_seconds_sum"));
        assert!(text.contains("rexec_bicrit_solve_seconds_count 1"));
    }

    #[test]
    fn exposition_is_stable_across_renders() {
        let r = Registry::new();
        r.counter("z.second").add(2);
        r.counter("a.first").add(1);
        r.sketch("lat").record(0.5);
        let a = prometheus_text(&r);
        let b = prometheus_text(&r);
        assert_eq!(a, b);
        let first = a.find("rexec_a_first_total").unwrap();
        let second = a.find("rexec_z_second_total").unwrap();
        assert!(first < second, "families must be alphabetical");
    }

    #[test]
    fn checker_rejects_malformed_expositions() {
        let cases: &[(&str, &str)] = &[
            ("", "empty"),
            ("rexec_x_total 1", "newline"),
            ("rexec_x_total 1\n", "no preceding TYPE"),
            ("# TYPE rexec_x wibble\nrexec_x 1\n", "unknown type"),
            (
                "# TYPE rexec_x counter\nrexec_x 1\n",
                "lacks the _total suffix",
            ),
            (
                "# TYPE rexec_x_total counter\nrexec_x_total -1\n",
                "negative counter",
            ),
            (
                "# TYPE rexec_x_total counter\nrexec_x_total abc\n",
                "unparsable value",
            ),
            (
                "# TYPE rexec_x gauge\n# TYPE rexec_x gauge\nrexec_x 1\n",
                "duplicate TYPE",
            ),
            (
                "# TYPE rexec_a gauge\nrexec_a 1\n# TYPE rexec_b gauge\nrexec_b 2\nrexec_a 3\n",
                "is interleaved",
            ),
            (
                "# TYPE rexec_s summary\nrexec_s{quantile=\"0.9\",aaa=\"x\"} 1\n",
                "not sorted",
            ),
            (
                "# TYPE rexec_s summary\nrexec_s{q=\"0.9\"} 1\n",
                "quantile label",
            ),
            ("# TYPE 9bad gauge\n9bad 1\n", "invalid TYPE name"),
            (
                "# TYPE rexec_h histogram\nrexec_h_bucket{le=\"1\"} 1\n",
                "+Inf bucket",
            ),
        ];
        for (text, want) in cases {
            let err = check_prometheus_text(text).expect_err(text);
            assert!(
                err.contains(want),
                "`{text}` should fail with `{want}`, got `{err}`"
            );
        }
    }

    #[test]
    fn checker_accepts_labels_escapes_and_timestamps() {
        let text = "\
# HELP rexec_g a gauge with labels
# TYPE rexec_g gauge
rexec_g{a=\"x\\\"y\",b=\"z\"} 1.5 1700000000
# TYPE rexec_h histogram
rexec_h_bucket{le=\"0.1\"} 1
rexec_h_bucket{le=\"+Inf\"} 2
rexec_h_sum 0.3
rexec_h_count 2
";
        check_prometheus_text(text).unwrap();
    }

    #[test]
    fn snapshot_diff_subtracts_exact_sections() {
        let r = Registry::new();
        r.counter("hits").add(10);
        r.sketch("lat").record(1.0);
        r.set_spans_enabled(true);
        drop(r.span("work"));
        let before = r.snapshot_value();

        r.counter("hits").add(5);
        r.counter("fresh").add(2);
        r.sketch("lat").record(2.0);
        r.sketch("lat").record(3.0);
        drop(r.span("work"));
        r.gauge("speed").set(9.0);
        let after = r.snapshot_value();

        let diff = snapshot_diff(&before, &after);
        assert_eq!(as_u64(diff.get("counters").unwrap().get("hits")), Some(5));
        assert_eq!(as_u64(diff.get("counters").unwrap().get("fresh")), Some(2));
        let lat = diff.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(as_u64(lat.get("count")), Some(2));
        assert!(lat.get("p50").is_none(), "quantiles are not subtractable");
        let work = diff.get("spans").unwrap().get("work").unwrap();
        assert_eq!(as_u64(work.get("count")), Some(1));
        assert!(work.get("max_nanos").is_none());
        // Gauges pass through as last observations.
        match diff.get("gauges").unwrap().get("speed").unwrap() {
            Value::Number(n) => assert_eq!(n.as_f64(), 9.0),
            other => panic!("gauge diff should be a number, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_diff_saturates_across_resets() {
        let r = Registry::new();
        r.counter("c").add(7);
        let before = r.snapshot_value();
        r.reset();
        r.counter("c").add(3);
        let after = r.snapshot_value();
        let diff = snapshot_diff(&before, &after);
        assert_eq!(as_u64(diff.get("counters").unwrap().get("c")), Some(0));
    }
}
