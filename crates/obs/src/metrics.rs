//! Scalar metrics: monotone counters, last-value gauges, and span timers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotone event counter.
///
/// Additions are exact (`u64`, wrapping is ~585 years of nanosecond
/// events) and commutative, so the aggregate value is identical no matter
/// how many threads contributed or in which order — the same argument
/// that makes `sim::stats::Stats::merge` thread-count-independent, but
/// without any floating-point slack.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-value gauge for quantities that are *observed*, not accumulated
/// (throughput, queue depth). Gauges carry wall-clock-dependent values and
/// are therefore excluded from the determinism guarantee that counters and
/// histogram sketches provide.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Aggregated timings of one named span: how many times it ran, total and
/// maximum duration. Nanosecond `u64` totals keep merging exact.
#[derive(Debug, Default)]
pub struct SpanStat {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl SpanStat {
    pub const fn new() -> Self {
        SpanStat {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn total_nanos(&self) -> u64 {
        self.total_nanos.load(Ordering::Relaxed)
    }

    pub fn max_nanos(&self) -> u64 {
        self.max_nanos.load(Ordering::Relaxed)
    }

    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos().checked_div(self.count()).unwrap_or(0)
    }

    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
    }
}

/// RAII timer: measures from construction to drop and records into a
/// [`SpanStat`], and — when the timeline is enabled (see
/// [`crate::set_timeline_enabled`]) — also records a complete event on
/// the span timeline with parent nesting. When both are disabled the
/// span is a no-op that never reads the clock, so the disabled path
/// costs two branches.
#[derive(Debug)]
pub struct Span {
    active: Option<(Arc<SpanStat>, Instant)>,
    timeline: Option<crate::timeline::TimelineSpan>,
}

impl Span {
    /// Starts timing into `stat` if `enabled`, otherwise a no-op span.
    /// Never records on the timeline (it has no name); prefer the
    /// `span!` macro or [`crate::Registry::span`], which do.
    pub fn start(stat: &Arc<SpanStat>, enabled: bool) -> Span {
        Span {
            active: enabled.then(|| (Arc::clone(stat), Instant::now())),
            timeline: None,
        }
    }

    /// Starts a span with an optional aggregate stat and an optional
    /// timeline half-event (used by the registry entry points).
    pub(crate) fn with_timeline(
        stat: Option<&Arc<SpanStat>>,
        timeline: Option<crate::timeline::TimelineSpan>,
    ) -> Span {
        Span {
            active: stat.map(|s| (Arc::clone(s), Instant::now())),
            timeline,
        }
    }

    /// A span that records nothing.
    pub fn noop() -> Span {
        Span {
            active: None,
            timeline: None,
        }
    }

    /// Whether this span is recording an aggregate timing.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((stat, started)) = self.active.take() {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stat.record_nanos(nanos);
        }
        if let Some(timeline) = self.timeline.take() {
            timeline.finish();
        }
    }
}

/// Process-wide on/off switch for span timing (see [`Span::start`]).
#[derive(Debug, Default)]
pub struct Toggle {
    on: AtomicBool,
}

impl Toggle {
    pub const fn new(initial: bool) -> Self {
        Toggle {
            on: AtomicBool::new(initial),
        }
    }

    #[inline]
    pub fn get(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    pub fn set(&self, value: bool) {
        self.on.store(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_exactly_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_stores_last_value() {
        let g = Gauge::new();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
        g.reset();
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn span_records_only_when_enabled() {
        let stat = Arc::new(SpanStat::new());
        {
            let _s = Span::start(&stat, false);
        }
        assert_eq!(stat.count(), 0);
        {
            let _s = Span::start(&stat, true);
        }
        assert_eq!(stat.count(), 1);
        assert!(stat.max_nanos() >= stat.mean_nanos());
    }

    #[test]
    fn span_stat_mean_of_zero_runs_is_zero() {
        assert_eq!(SpanStat::new().mean_nanos(), 0);
    }
}
