//! Rolling-window aggregation over [`HistogramSketch`]: the latency /
//! QPS primitive a serving path mounts on its request loop.
//!
//! A [`RollingWindow`] keeps a ring of per-window *shards* (one
//! [`HistogramSketch`] plus an event count per fixed-length time
//! window). Recording touches only the shard of the current window;
//! reading merges the live shards on demand (`merge-on-read`), so the
//! write path stays cheap and the read path sees exactly the events of
//! the last `windows × window_secs` seconds, quantized to whole
//! windows.
//!
//! Time is explicit: `record_at` / `stats_at` take a timestamp in
//! seconds, which makes the combinator fully deterministic and
//! testable. The `record` / `stats` conveniences feed in wall-clock
//! time from a per-instance epoch. All reported values derive from
//! exact per-window `u64` counts, so for a fixed sequence of
//! `(timestamp, value)` pairs the outputs are reproducible.

use crate::registry::Registry;
use crate::sketch::HistogramSketch;
use std::sync::Mutex;
use std::time::Instant;

/// One time-window's worth of recorded events.
struct WindowShard {
    /// Window index (`floor(t / window_secs)`); `u64::MAX` = empty slot.
    index: u64,
    count: u64,
    sketch: HistogramSketch,
}

struct Inner {
    shards: Vec<WindowShard>,
}

/// Merged view over the live windows at some instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Events inside the covered windows.
    pub count: u64,
    /// Events per second over the full covered span
    /// (`windows × window_secs`), the steady-state throughput gauge.
    pub events_per_sec: f64,
    /// Median of the covered events (`None` when empty).
    pub p50: Option<f64>,
    /// 99th percentile of the covered events (`None` when empty).
    pub p99: Option<f64>,
    /// Exact smallest covered value (`None` when empty).
    pub min: Option<f64>,
    /// Exact largest covered value (`None` when empty).
    pub max: Option<f64>,
}

/// Fixed-capacity ring of per-window histogram shards with merge-on-read
/// aggregation.
pub struct RollingWindow {
    window_secs: f64,
    windows: usize,
    template: HistogramSketch,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl RollingWindow {
    /// A rolling window of `windows` consecutive spans of `window_secs`
    /// seconds each, with the default sketch resolution. Panics if
    /// `windows` is 0 or `window_secs` is not strictly positive.
    pub fn new(windows: usize, window_secs: f64) -> Self {
        Self::with_sketch(
            windows,
            window_secs,
            HistogramSketch::with_default_resolution(),
        )
    }

    /// Like [`new`](Self::new), with a caller-shaped sketch (resolution
    /// and range) used as the template for every window shard.
    pub fn with_sketch(windows: usize, window_secs: f64, template: HistogramSketch) -> Self {
        assert!(windows > 0, "need at least one window");
        assert!(
            window_secs > 0.0 && window_secs.is_finite(),
            "window length must be positive"
        );
        let shards = (0..windows)
            .map(|_| WindowShard {
                index: u64::MAX,
                count: 0,
                sketch: template.empty_like(),
            })
            .collect();
        RollingWindow {
            window_secs,
            windows,
            template,
            epoch: Instant::now(),
            inner: Mutex::new(Inner { shards }),
        }
    }

    /// Total span covered by the ring, in seconds.
    pub fn span_secs(&self) -> f64 {
        self.windows as f64 * self.window_secs
    }

    fn window_index(&self, t_secs: f64) -> u64 {
        if t_secs <= 0.0 {
            0
        } else {
            (t_secs / self.window_secs) as u64
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records `value` at explicit time `t_secs` (seconds on the
    /// caller's clock). Reuses or recycles the ring slot for that
    /// window; a slot whose window has scrolled out of range is reset
    /// before reuse. Timestamps may arrive slightly out of order: any
    /// window still in the ring accepts records.
    pub fn record_at(&self, t_secs: f64, value: f64) {
        let idx = self.window_index(t_secs);
        let slot = (idx % self.windows as u64) as usize;
        let mut inner = self.lock();
        let shard = &mut inner.shards[slot];
        if shard.index != idx {
            shard.index = idx;
            shard.count = 0;
            shard.sketch.reset();
        }
        shard.count += 1;
        shard.sketch.record(value);
    }

    /// Merged statistics over the windows still live at `t_secs`: the
    /// current window and the `windows − 1` before it.
    pub fn stats_at(&self, t_secs: f64) -> WindowStats {
        let now = self.window_index(t_secs);
        let oldest = now.saturating_sub(self.windows as u64 - 1);
        let merged = self.template.empty_like();
        let mut count = 0;
        let inner = self.lock();
        for shard in &inner.shards {
            if shard.index != u64::MAX && shard.index >= oldest && shard.index <= now {
                merged.merge_from(&shard.sketch);
                count += shard.count;
            }
        }
        drop(inner);
        WindowStats {
            count,
            events_per_sec: count as f64 / self.span_secs(),
            p50: merged.quantile(0.5),
            p99: merged.quantile(0.99),
            min: (merged.count() > 0).then(|| merged.min()),
            max: (merged.count() > 0).then(|| merged.max()),
        }
    }

    /// Wall-clock convenience: records at seconds since this instance
    /// was created.
    pub fn record(&self, value: f64) {
        self.record_at(self.epoch.elapsed().as_secs_f64(), value);
    }

    /// Wall-clock convenience: stats as of now.
    pub fn stats(&self) -> WindowStats {
        self.stats_at(self.epoch.elapsed().as_secs_f64())
    }

    /// Publishes the current window stats as gauges `<prefix>.p50`,
    /// `<prefix>.p99` and `<prefix>.per_sec` into `registry` — the
    /// shape the ROADMAP's `rexec-serve` latency/QPS endpoint mounts.
    /// Empty windows publish 0.
    pub fn publish_at(&self, registry: &Registry, prefix: &str, t_secs: f64) -> WindowStats {
        let stats = self.stats_at(t_secs);
        registry
            .gauge(&format!("{prefix}.p50"))
            .set(stats.p50.unwrap_or(0.0));
        registry
            .gauge(&format!("{prefix}.p99"))
            .set(stats.p99.unwrap_or(0.0));
        registry
            .gauge(&format!("{prefix}.per_sec"))
            .set(stats.events_per_sec);
        stats
    }

    /// Wall-clock convenience for [`publish_at`](Self::publish_at).
    pub fn publish(&self, registry: &Registry, prefix: &str) -> WindowStats {
        self.publish_at(registry, prefix, self.epoch.elapsed().as_secs_f64())
    }
}

impl std::fmt::Debug for RollingWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollingWindow")
            .field("windows", &self.windows)
            .field("window_secs", &self.window_secs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_only_live_windows() {
        // 3 windows of 1 s.
        let w = RollingWindow::new(3, 1.0);
        w.record_at(0.5, 10.0);
        w.record_at(1.5, 20.0);
        w.record_at(2.5, 30.0);

        let s = w.stats_at(2.9);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Some(10.0));
        assert_eq!(s.max, Some(30.0));
        assert_eq!(s.events_per_sec, 1.0);

        // At t = 3.x the 0.x window has scrolled out.
        let s = w.stats_at(3.1);
        assert_eq!(s.count, 2);
        assert_eq!(s.min, Some(20.0));

        // At t = 10 everything has expired.
        let s = w.stats_at(10.0);
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, None);
        assert_eq!(s.p99, None);
        assert_eq!(s.min, None);
    }

    #[test]
    fn slot_reuse_resets_stale_shards() {
        let w = RollingWindow::new(2, 1.0);
        w.record_at(0.1, 1.0);
        w.record_at(0.2, 1.0);
        // Window 4 maps to the same slot as window 0 (4 % 2 == 0): the
        // stale shard must reset, not accumulate.
        w.record_at(4.5, 99.0);
        let s = w.stats_at(4.9);
        assert_eq!(s.count, 1);
        assert_eq!(s.min, Some(99.0));
    }

    #[test]
    fn quantiles_track_the_covered_population() {
        let w = RollingWindow::new(4, 0.25);
        for i in 0..1000 {
            // All within the covered 1 s span.
            w.record_at(0.999 * (i as f64) / 1000.0, (i + 1) as f64);
        }
        let s = w.stats_at(0.999);
        assert_eq!(s.count, 1000);
        let p50 = s.p50.unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 = {p50}");
        let p99 = s.p99.unwrap();
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 = {p99}");
        assert_eq!(s.events_per_sec, 1000.0);
    }

    #[test]
    fn deterministic_for_a_fixed_input_sequence() {
        let run = || {
            let w = RollingWindow::new(5, 2.0);
            for i in 0..500u64 {
                w.record_at(i as f64 * 0.01, (i % 37) as f64 + 0.5);
            }
            let s = w.stats_at(5.0);
            (s.count, s.p50, s.p99, s.min, s.max)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn publish_sets_prefixed_gauges() {
        let r = Registry::new();
        let w = RollingWindow::new(2, 1.0);
        w.record_at(0.1, 4.0);
        w.record_at(0.2, 8.0);
        let s = w.publish_at(&r, "serve.latency", 0.5);
        assert_eq!(s.count, 2);
        assert_eq!(r.gauge("serve.latency.p50").get(), s.p50.unwrap());
        assert_eq!(r.gauge("serve.latency.p99").get(), s.p99.unwrap());
        assert_eq!(r.gauge("serve.latency.per_sec").get(), 1.0);

        // Empty window → zeros, not stale values.
        w.publish_at(&r, "serve.latency", 100.0);
        assert_eq!(r.gauge("serve.latency.p50").get(), 0.0);
        assert_eq!(r.gauge("serve.latency.per_sec").get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_is_rejected() {
        RollingWindow::new(0, 1.0);
    }
}
