//! Named-metric registry with a deterministic JSON snapshot.
//!
//! The registry hands out `Arc` handles keyed by name; the `Mutex` is only
//! taken on the registration path, so hot loops that cache their handle
//! (see the `counter!` / `span!` macros) never contend. Snapshots iterate
//! `BTreeMap`s, so key order — and therefore the serialized form — is
//! stable across runs and thread counts.

use crate::metrics::{Counter, Gauge, Span, SpanStat, Toggle};
use crate::shard::Shard;
use crate::sketch::HistogramSketch;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Default)]
struct Tables {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    sketches: BTreeMap<String, Arc<HistogramSketch>>,
    spans: BTreeMap<String, Arc<SpanStat>>,
}

/// Process- or scope-wide collection of named metrics.
///
/// Counters and histogram sketches hold exact `u64` counts and are
/// thread-count-independent; gauges and span timings carry wall-clock
/// values and are reported in separate snapshot sections so deterministic
/// consumers can ignore them.
pub struct Registry {
    spans_enabled: Toggle,
    tables: Mutex<Tables>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with span timing disabled (the cheap default;
    /// counters and sketches always record).
    pub fn new() -> Self {
        Registry {
            spans_enabled: Toggle::new(false),
            tables: Mutex::new(Tables::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Tables> {
        self.tables.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or finds) the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut t = self.lock();
        if let Some(c) = t.counters.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        t.counters.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Registers (or finds) the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut t = self.lock();
        if let Some(g) = t.gauges.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        t.gauges.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Registers (or finds) the named histogram sketch, created with the
    /// default resolution on first use.
    pub fn sketch(&self, name: &str) -> Arc<HistogramSketch> {
        self.sketch_with(name, HistogramSketch::with_default_resolution)
    }

    /// Registers (or finds) the named sketch, created merge-compatible
    /// with `like` on first use.
    pub fn sketch_like(&self, name: &str, like: &HistogramSketch) -> Arc<HistogramSketch> {
        self.sketch_with(name, || like.empty_like())
    }

    fn sketch_with(
        &self,
        name: &str,
        make: impl FnOnce() -> HistogramSketch,
    ) -> Arc<HistogramSketch> {
        let mut t = self.lock();
        if let Some(s) = t.sketches.get(name) {
            return Arc::clone(s);
        }
        let s = Arc::new(make());
        t.sketches.insert(name.to_string(), Arc::clone(&s));
        s
    }

    /// Registers (or finds) the named span statistic.
    pub fn span_stat(&self, name: &str) -> Arc<SpanStat> {
        let mut t = self.lock();
        if let Some(s) = t.spans.get(name) {
            return Arc::clone(s);
        }
        let s = Arc::new(SpanStat::new());
        t.spans.insert(name.to_string(), Arc::clone(&s));
        s
    }

    /// Starts a named RAII span: aggregate timing when span timing is
    /// enabled, a timeline event when the timeline is enabled, a no-op
    /// when both are off.
    pub fn span(&self, name: &str) -> Span {
        let timeline = crate::timeline::timeline_begin(name);
        if self.spans_enabled() {
            Span::with_timeline(Some(&self.span_stat(name)), timeline)
        } else {
            Span::with_timeline(None, timeline)
        }
    }

    /// Starts a span into an already-registered stat, honouring the
    /// span-timing and timeline toggles. Preferred in hot loops via the
    /// `span!` macro (which supplies the call site's constant name).
    pub fn span_for(&self, stat: &Arc<SpanStat>, name: &str) -> Span {
        Span::with_timeline(
            self.spans_enabled().then_some(stat),
            crate::timeline::timeline_begin(name),
        )
    }

    /// Whether span timing is on.
    pub fn spans_enabled(&self) -> bool {
        self.spans_enabled.get()
    }

    /// Turns span timing on or off (counters and sketches are unaffected).
    pub fn set_spans_enabled(&self, on: bool) {
        self.spans_enabled.set(on);
    }

    /// Sorted snapshot of every counter as `(name, value)`.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let t = self.lock();
        t.counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Sorted snapshot of every gauge as `(name, value)`.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        let t = self.lock();
        t.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect()
    }

    /// Sorted handles to every histogram sketch as `(name, sketch)`.
    pub fn sketches(&self) -> Vec<(String, Arc<HistogramSketch>)> {
        let t = self.lock();
        t.sketches
            .iter()
            .map(|(k, s)| (k.clone(), Arc::clone(s)))
            .collect()
    }

    /// Sorted handles to every span statistic as `(name, stat)`.
    pub fn span_stats(&self) -> Vec<(String, Arc<SpanStat>)> {
        let t = self.lock();
        t.spans
            .iter()
            .map(|(k, s)| (k.clone(), Arc::clone(s)))
            .collect()
    }

    /// Adds a shard's totals into this registry's metrics.
    pub fn absorb(&self, shard: &Shard) {
        shard.absorb_into(self);
    }

    /// Zeroes every registered metric, keeping the registrations.
    pub fn reset(&self) {
        let t = self.lock();
        for c in t.counters.values() {
            c.reset();
        }
        for g in t.gauges.values() {
            g.reset();
        }
        for s in t.sketches.values() {
            s.reset();
        }
        for s in t.spans.values() {
            s.reset();
        }
    }

    /// Deterministic slice of the snapshot: exact counters and histogram
    /// summaries only — byte-identical across thread counts for the same
    /// logical run.
    pub fn deterministic_value(&self) -> Value {
        let t = self.lock();
        let counters: BTreeMap<String, Value> = t
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get().to_value()))
            .collect();
        let histograms: BTreeMap<String, Value> = t
            .sketches
            .iter()
            .map(|(k, s)| (k.clone(), s.summary_value()))
            .collect();
        let mut map = BTreeMap::new();
        map.insert("counters".to_string(), Value::Object(counters));
        map.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(map)
    }

    /// Full snapshot: the deterministic sections plus wall-clock gauges
    /// and span timings.
    pub fn snapshot_value(&self) -> Value {
        let deterministic = self.deterministic_value();
        let t = self.lock();
        let gauges: BTreeMap<String, Value> = t
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), g.get().to_value()))
            .collect();
        let spans: BTreeMap<String, Value> = t
            .spans
            .iter()
            .map(|(k, s)| {
                let mut span = BTreeMap::new();
                span.insert("count".to_string(), s.count().to_value());
                span.insert("total_nanos".to_string(), s.total_nanos().to_value());
                span.insert("mean_nanos".to_string(), s.mean_nanos().to_value());
                span.insert("max_nanos".to_string(), s.max_nanos().to_value());
                (k.clone(), Value::Object(span))
            })
            .collect();
        let mut map = match deterministic {
            Value::Object(map) => map,
            _ => unreachable!("deterministic_value is always an object"),
        };
        map.insert("gauges".to_string(), Value::Object(gauges));
        map.insert("spans".to_string(), Value::Object(spans));
        Value::Object(map)
    }
}

impl Serialize for Registry {
    fn to_value(&self) -> Value {
        self.snapshot_value()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.lock();
        f.debug_struct("Registry")
            .field("spans_enabled", &self.spans_enabled.get())
            .field("counters", &t.counters.len())
            .field("gauges", &t.gauges.len())
            .field("sketches", &t.sketches.len())
            .field("spans", &t.spans.len())
            .finish()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry used by the `counter!` / `gauge!` /
/// `sketch!` / `span!` macros.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_are_shared_by_name() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").add(4);
        r.counter("b").incr();
        assert_eq!(r.counter("a").get(), 7);
        assert_eq!(r.counter("b").get(), 1);
    }

    #[test]
    fn span_gating_follows_the_toggle() {
        let r = Registry::new();
        {
            let _s = r.span("work");
        }
        assert_eq!(r.span_stat("work").count(), 0);
        r.set_spans_enabled(true);
        {
            let _s = r.span("work");
        }
        assert_eq!(r.span_stat("work").count(), 1);
    }

    #[test]
    fn snapshot_sections_are_complete_and_sorted() {
        let r = Registry::new();
        r.counter("z.last").incr();
        r.counter("a.first").add(2);
        r.gauge("speed").set(1.5);
        r.sketch("lat").record(0.25);
        r.set_spans_enabled(true);
        drop(r.span("step"));

        let json = serde_json::to_string(&r).unwrap();
        // BTreeMap ordering: "a.first" serializes before "z.last".
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z);
        for key in ["counters", "gauges", "histograms", "spans"] {
            assert!(json.contains(key), "missing section {key}");
        }

        let det = serde_json::to_string(&r.deterministic_value()).unwrap();
        assert!(!det.contains("spans"));
        assert!(!det.contains("gauges"));
    }

    #[test]
    fn absorb_adds_shard_totals() {
        let r = Registry::new();
        r.counter("hits").add(10);
        let mut shard = Shard::new();
        shard.incr("hits", 5);
        shard.record("lat", 1.0);
        r.absorb(&shard);
        assert_eq!(r.counter("hits").get(), 15);
        assert_eq!(r.sketch("lat").count(), 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let r = Registry::new();
        r.counter("c").add(9);
        r.sketch("h").record(2.0);
        r.reset();
        assert_eq!(r.counter("c").get(), 0);
        assert_eq!(r.sketch("h").count(), 0);
    }
}
