//! Thread-local metric shards with deterministic merging.
//!
//! A [`Shard`] is a plain-value bundle of counters and histogram sketches
//! that one worker (e.g. one rayon chunk) fills without any atomics or
//! locks, then hands back through the reduction. `merge` is key-wise
//! `u64` addition over ordered maps — commutative and associative with no
//! floating-point accumulation — so the merged aggregate is byte-identical
//! for every thread count and merge order, the same contract
//! `sim::stats::Stats::merge` provides for its float moments (there within
//! 1e-9; here exactly).

use crate::registry::Registry;
use crate::sketch::HistogramSketch;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// A local, mergeable slice of metric state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Shard {
    counters: BTreeMap<String, u64>,
    sketches: BTreeMap<String, HistogramSketch>,
}

impl Shard {
    pub fn new() -> Self {
        Shard::default()
    }

    /// Adds `n` to the named counter.
    pub fn incr(&mut self, name: &str, n: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Records `value` into the named histogram sketch (created with the
    /// default resolution on first use).
    pub fn record(&mut self, name: &str, value: f64) {
        if !self.sketches.contains_key(name) {
            self.sketches
                .insert(name.to_string(), HistogramSketch::with_default_resolution());
        }
        self.sketches[name].record(value);
    }

    /// Records `n` copies of `value` into the named sketch — identical
    /// totals to `n` [`record`](Self::record) calls, one map lookup.
    pub fn record_n(&mut self, name: &str, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        if !self.sketches.contains_key(name) {
            self.sketches
                .insert(name.to_string(), HistogramSketch::with_default_resolution());
        }
        self.sketches[name].record_n(value, n);
    }

    /// Merges a locally filled sketch into the named sketch — identical
    /// totals to recording every value through [`record`](Self::record),
    /// but the hot loop touches a plain local sketch and pays the map
    /// lookup once per chunk instead of once per value.
    pub fn merge_sketch(&mut self, name: &str, other: &HistogramSketch) {
        if !self.sketches.contains_key(name) {
            self.sketches.insert(name.to_string(), other.empty_like());
        }
        self.sketches[name].merge_from(other);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named sketch, if any value was recorded into it.
    pub fn sketch(&self, name: &str) -> Option<&HistogramSketch> {
        self.sketches.get(name)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.sketches.is_empty()
    }

    /// Merges another shard into this one and returns it (the
    /// `Stats::merge` consume-and-return shape, reduction-friendly).
    pub fn merge(mut self, other: Shard) -> Shard {
        for (name, n) in other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        for (name, sketch) in other.sketches {
            if let Some(mine) = self.sketches.get(&name) {
                mine.merge_from(&sketch);
            } else {
                self.sketches.insert(name, sketch);
            }
        }
        self
    }

    /// Flushes this shard's totals into a registry's global metrics.
    pub fn absorb_into(&self, registry: &Registry) {
        for (name, n) in &self.counters {
            registry.counter(name).add(*n);
        }
        for (name, sketch) in &self.sketches {
            registry.sketch_like(name, sketch).merge_from(sketch);
        }
    }
}

impl Serialize for Shard {
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("counters".to_string(), self.counters.to_value());
        map.insert(
            "histograms".to_string(),
            Value::Object(
                self.sketches
                    .iter()
                    .map(|(k, v)| (k.clone(), v.summary_value()))
                    .collect(),
            ),
        );
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(shard: &mut Shard, values: &[u64]) {
        for &v in values {
            shard.incr("events", 1);
            shard.incr("weight", v);
            shard.record("value", v as f64);
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let data: Vec<u64> = (1..=100).collect();
        let mut left = Shard::new();
        let mut right = Shard::new();
        fill(&mut left, &data[..37]);
        fill(&mut right, &data[37..]);

        let ab = left.clone().merge(right.clone());
        let ba = right.merge(left);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("events"), 100);
        assert_eq!(ab.counter("weight"), data.iter().sum::<u64>());
    }

    #[test]
    fn any_partition_merges_to_the_same_aggregate() {
        let data: Vec<u64> = (1..=1000).collect();
        let mut reference = Shard::new();
        fill(&mut reference, &data);

        for parts in [1usize, 2, 3, 7, 16] {
            let chunk = data.len().div_ceil(parts);
            let merged = data
                .chunks(chunk)
                .map(|c| {
                    let mut s = Shard::new();
                    fill(&mut s, c);
                    s
                })
                .fold(Shard::new(), Shard::merge);
            assert_eq!(merged, reference, "{parts} partitions");
            assert_eq!(
                serde_json::to_string(&merged).unwrap(),
                serde_json::to_string(&reference).unwrap(),
                "{parts} partitions: JSON must be byte-identical"
            );
        }
    }

    #[test]
    fn empty_shard_is_merge_identity() {
        let mut s = Shard::new();
        fill(&mut s, &[1, 2, 3]);
        let merged = s.clone().merge(Shard::new());
        assert_eq!(merged, s);
        assert!(Shard::new().is_empty());
        assert!(!merged.is_empty());
    }
}
