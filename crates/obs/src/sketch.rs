//! Log-bucketed histogram sketch with lock-free recording.
//!
//! Same geometric bucketing as `rexec_sim::Histogram` (constant relative
//! resolution), but with a fixed bucket array of atomics so concurrent
//! recorders never lock, plus explicit underflow/overflow buckets.
//! Bucket counts are exact `u64`s, so aggregates are byte-identical for a
//! given multiset of recorded values regardless of thread count.

use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic geometric-bucket histogram over `[0, +∞)`.
///
/// Bucket 0 holds values `≤ min_value` (underflow); the last bucket holds
/// values past the configured range (overflow). Non-finite values are
/// ignored and counted separately.
#[derive(Debug)]
pub struct HistogramSketch {
    min_value: f64,
    resolution: f64,
    /// `ln(1 + resolution)`, cached.
    log_base: f64,
    buckets: Box<[AtomicU64]>,
    total: AtomicU64,
    ignored: AtomicU64,
    /// Exact extremes, stored as `f64` bits and updated by CAS.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistogramSketch {
    /// Creates a sketch with `resolution` relative accuracy (in `(0, 1]`)
    /// covering `[min_value, max_value]`; values outside clamp into the
    /// underflow/overflow buckets.
    pub fn new(min_value: f64, resolution: f64, max_value: f64) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(
            resolution > 0.0 && resolution <= 1.0,
            "resolution must be in (0, 1]"
        );
        assert!(max_value > min_value, "max_value must exceed min_value");
        let log_base = (1.0 + resolution).ln();
        let spans = ((max_value / min_value).ln() / log_base).ceil() as usize;
        // +1 for the underflow bucket, +1 for the overflow bucket.
        HistogramSketch::with_bucket_count(min_value, resolution, spans + 2)
    }

    fn with_bucket_count(min_value: f64, resolution: f64, len: usize) -> Self {
        let log_base = (1.0 + resolution).ln();
        let buckets = (0..len).map(|_| AtomicU64::new(0)).collect();
        HistogramSketch {
            min_value,
            resolution,
            log_base,
            buckets,
            total: AtomicU64::new(0),
            ignored: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Default sketch: 2 % relative resolution over `[1 ns, 10⁶ s]` (in
    /// seconds) — wide enough for span durations and most model values.
    pub fn with_default_resolution() -> Self {
        HistogramSketch::new(1e-9, 0.02, 1e6)
    }

    /// An empty sketch sharing this one's parameters (merge-compatible).
    pub fn empty_like(&self) -> Self {
        HistogramSketch::with_bucket_count(self.min_value, self.resolution, self.buckets.len())
    }

    fn bucket_of(&self, value: f64) -> usize {
        if value <= self.min_value {
            return 0;
        }
        let idx = ((value / self.min_value).ln() / self.log_base) as usize + 1;
        idx.min(self.buckets.len() - 1)
    }

    /// Lower edge of a bucket (0 for the underflow bucket).
    fn bucket_low(&self, index: usize) -> f64 {
        if index == 0 {
            0.0
        } else {
            self.min_value * (self.log_base * (index - 1) as f64).exp()
        }
    }

    /// Records one value. Negative values clamp to the underflow bucket;
    /// non-finite values are counted as ignored.
    pub fn record(&self, value: f64) {
        if !value.is_finite() {
            self.ignored.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let value = value.max(0.0);
        let b = self.bucket_of(value);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        update_extreme(&self.min_bits, value, |new, cur| new < cur);
        update_extreme(&self.max_bits, value, |new, cur| new > cur);
    }

    /// Records `n` copies of one value in O(1) — byte-identical to `n`
    /// successive [`record`](Self::record) calls, but the bucket index is
    /// computed (and the extremes CAS'd) once. Hot loops that see long
    /// runs of an identical value (e.g. the simulator fast path, where
    /// most patterns take exactly one attempt) batch them through here.
    pub fn record_n(&self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        if !value.is_finite() {
            self.ignored.fetch_add(n, Ordering::Relaxed);
            return;
        }
        let value = value.max(0.0);
        let b = self.bucket_of(value);
        self.buckets[b].fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
        update_extreme(&self.min_bits, value, |new, cur| new < cur);
        update_extreme(&self.max_bits, value, |new, cur| new > cur);
    }

    /// Merges another sketch's counts (must share parameters).
    pub fn merge_from(&self, other: &HistogramSketch) {
        assert_eq!(self.min_value, other.min_value, "parameter mismatch");
        assert_eq!(self.resolution, other.resolution, "parameter mismatch");
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.ignored
            .fetch_add(other.ignored.load(Ordering::Relaxed), Ordering::Relaxed);
        let omin = other.min();
        let omax = other.max();
        if omin.is_finite() {
            update_extreme(&self.min_bits, omin, |new, cur| new < cur);
        }
        if omax.is_finite() {
            update_extreme(&self.max_bits, omax, |new, cur| new > cur);
        }
    }

    /// Number of recorded (finite) values.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Number of non-finite values that were ignored.
    pub fn ignored(&self) -> u64 {
        self.ignored.load(Ordering::Relaxed)
    }

    /// Count in the overflow bucket (values beyond the configured range).
    pub fn overflow_count(&self) -> u64 {
        self.buckets[self.buckets.len() - 1].load(Ordering::Relaxed)
    }

    /// Exact smallest recorded value (`+∞` when empty).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Exact largest recorded value (`−∞` when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Value at quantile `q` (within the relative resolution).
    ///
    /// Edge cases, in order of precedence:
    /// - empty sketch (no finite values recorded) → `None`, for every `q`;
    /// - `q` is NaN → `None` (NaN would otherwise defeat the clamp below
    ///   and silently resolve to rank 0);
    /// - `q ≤ 0` → the exact observed minimum; `q ≥ 1` → the exact
    ///   observed maximum (out-of-range `q` clamps into `[0, 1]`);
    /// - the rank lands in the overflow bucket (values beyond the
    ///   configured range) → the exact observed maximum, since that
    ///   bucket has no upper edge to interpolate against. A sketch whose
    ///   samples are *all* overflowed therefore reports `max()` for every
    ///   positive quantile.
    ///
    /// Interior quantiles report the bucket midpoint, clamped to
    /// `[min(), max()]` so a single-sample sketch returns that sample
    /// exactly at every `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min());
        }
        if q >= 1.0 {
            return Some(self.max());
        }
        let rank = (q * total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            acc += bucket.load(Ordering::Relaxed);
            if acc >= rank {
                if i == self.buckets.len() - 1 {
                    // Overflow bucket has no upper edge; report the exact
                    // observed maximum.
                    return Some(self.max());
                }
                let mid = 0.5 * (self.bucket_low(i) + self.bucket_low(i + 1));
                return Some(mid.clamp(self.min(), self.max()));
            }
        }
        Some(self.max())
    }

    /// Zeroes all counts, keeping the configuration.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.ignored.store(0, Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }

    /// Deterministic JSON summary: exact counts plus key quantiles.
    pub fn summary_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("count".to_string(), self.count().to_value());
        map.insert("ignored".to_string(), self.ignored().to_value());
        map.insert("overflow".to_string(), self.overflow_count().to_value());
        if self.count() > 0 {
            map.insert("min".to_string(), self.min().to_value());
            map.insert("max".to_string(), self.max().to_value());
            for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                if let Some(v) = self.quantile(q) {
                    map.insert(label.to_string(), v.to_value());
                }
            }
        }
        Value::Object(map)
    }
}

impl Clone for HistogramSketch {
    fn clone(&self) -> Self {
        let clone =
            HistogramSketch::with_bucket_count(self.min_value, self.resolution, self.buckets.len());
        clone.merge_from(self);
        clone
    }
}

impl PartialEq for HistogramSketch {
    fn eq(&self, other: &Self) -> bool {
        self.min_value == other.min_value
            && self.resolution == other.resolution
            && self.count() == other.count()
            && self.ignored() == other.ignored()
            && self
                .buckets
                .iter()
                .zip(other.buckets.iter())
                .all(|(a, b)| a.load(Ordering::Relaxed) == b.load(Ordering::Relaxed))
    }
}

impl Serialize for HistogramSketch {
    fn to_value(&self) -> Value {
        self.summary_value()
    }
}

/// CAS loop updating an atomic `f64`-bits cell when `better(new, current)`.
fn update_extreme(cell: &AtomicU64, value: f64, better: impl Fn(f64, f64) -> bool) {
    let mut current = cell.load(Ordering::Relaxed);
    while better(value, f64::from_bits(current)) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let h = HistogramSketch::with_default_resolution();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = HistogramSketch::with_default_resolution();
        h.record(42.5);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(42.5), "q = {q}");
        }
    }

    #[test]
    fn overflow_values_clamp_and_report_exact_max() {
        let h = HistogramSketch::new(1.0, 0.1, 100.0);
        h.record(1e12);
        h.record(2e12);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), Some(2e12));
        assert_eq!(h.quantile(1.0), Some(2e12));
    }

    #[test]
    fn nan_quantile_is_none_even_when_populated() {
        let h = HistogramSketch::with_default_resolution();
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.quantile(f64::NAN), None);
        // Out-of-range (but finite) q clamps instead.
        assert_eq!(h.quantile(-0.5), Some(1.0));
        assert_eq!(h.quantile(7.0), Some(2.0));
    }

    #[test]
    fn all_overflow_sketch_reports_max_for_every_positive_quantile() {
        let h = HistogramSketch::new(1.0, 0.1, 10.0);
        for v in [1e6, 2e6, 3e6] {
            h.record(v);
        }
        assert_eq!(h.overflow_count(), 3);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(3e6), "q = {q}");
        }
        assert_eq!(h.quantile(0.0), Some(1e6));
    }

    #[test]
    fn underflow_and_negative_values_land_in_bucket_zero() {
        let h = HistogramSketch::new(1.0, 0.1, 100.0);
        h.record(0.0);
        h.record(-5.0);
        h.record(0.5);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0.0);
        assert!(h.quantile(0.5).unwrap() <= 1.0);
    }

    #[test]
    fn non_finite_values_are_ignored_not_counted() {
        let h = HistogramSketch::with_default_resolution();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.ignored(), 2);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_track_a_uniform_grid() {
        let h = HistogramSketch::new(1.0, 0.01, 1e6);
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.02, "p50 = {p50}");
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = HistogramSketch::with_default_resolution();
        let b = HistogramSketch::with_default_resolution();
        let all = HistogramSketch::with_default_resolution();
        for i in 0..500 {
            let v = 1.0 + (i as f64) * 13.7 % 997.0;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a, all);
        assert_eq!(a.quantile(0.9), all.quantile(0.9));
    }

    #[test]
    fn clone_preserves_counts_and_shape() {
        let h = HistogramSketch::new(0.5, 0.05, 1e3);
        for v in [0.1, 1.0, 10.0, 100.0, 1e9] {
            h.record(v);
        }
        let c = h.clone();
        assert_eq!(c, h);
        assert_eq!(c.overflow_count(), h.overflow_count());
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let h = HistogramSketch::with_default_resolution();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(1.0 + (t * 1000 + i) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 8000.0);
    }

    #[test]
    #[should_panic(expected = "parameter mismatch")]
    fn merge_rejects_mismatched_parameters() {
        let a = HistogramSketch::new(1.0, 0.01, 100.0);
        let b = HistogramSketch::new(1.0, 0.02, 100.0);
        a.merge_from(&b);
    }
}
