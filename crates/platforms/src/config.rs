//! A virtual configuration = platform × processor (paper §4.1).

use crate::platform::Platform;
use crate::processor::Processor;
use rexec_core::{BiCritSolver, ModelError, PowerModel, SilentModel, SpeedSet};
use serde::{Deserialize, Serialize};

/// One of the paper's eight virtual configurations: a platform (error rate
/// and resilience costs) combined with a processor (speeds and power).
///
/// The paper defaults are applied: `R = C`, `Pio = κ·σ_min³` and `ρ = 3`
/// (the performance bound is a property of the experiment, not stored
/// here — see [`Configuration::DEFAULT_RHO`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    /// Platform parameters (λ, C, V).
    pub platform: Platform,
    /// Processor parameters (speeds, κ, Pidle).
    pub processor: Processor,
    /// Dynamic I/O power actually in effect (defaults to `κσ_min³`).
    pub p_io: f64,
}

impl Configuration {
    /// The paper's default performance bound, `ρ = 3`.
    pub const DEFAULT_RHO: f64 = 3.0;

    /// Combines a platform and a processor with the default I/O power.
    pub fn new(platform: Platform, processor: Processor) -> Configuration {
        let p_io = processor.default_p_io();
        Configuration {
            platform,
            processor,
            p_io,
        }
    }

    /// Configuration name as used in figure captions, e.g. "Atlas/Crusoe".
    pub fn name(&self) -> String {
        format!(
            "{}/{}",
            self.platform.id.name(),
            self.processor.id.short_name()
        )
    }

    /// The power model of this configuration.
    pub fn power_model(&self) -> Result<PowerModel, ModelError> {
        PowerModel::new(self.processor.kappa, self.processor.p_idle, self.p_io)
    }

    /// The silent-error analytic model of this configuration.
    pub fn silent_model(&self) -> Result<SilentModel, ModelError> {
        SilentModel::new(
            self.platform.lambda,
            self.platform.costs(),
            self.power_model()?,
        )
    }

    /// The validated speed set of this configuration.
    pub fn speed_set(&self) -> Result<SpeedSet, ModelError> {
        self.processor.speed_set()
    }

    /// A ready-to-use BiCrit solver for this configuration.
    pub fn solver(&self) -> Result<BiCritSolver, ModelError> {
        Ok(BiCritSolver::new(self.silent_model()?, self.speed_set()?))
    }

    /// Sweep helper: a copy with a different I/O power.
    #[must_use]
    pub fn with_p_io(mut self, p_io: f64) -> Self {
        self.p_io = p_io;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformId;
    use crate::processor::ProcessorId;

    fn hera_xscale() -> Configuration {
        Configuration::new(
            Platform::get(PlatformId::Hera),
            Processor::get(ProcessorId::IntelXScale),
        )
    }

    #[test]
    fn name_formatting() {
        assert_eq!(hera_xscale().name(), "Hera/XScale");
        let ac = Configuration::new(
            Platform::get(PlatformId::Atlas),
            Processor::get(ProcessorId::TransmetaCrusoe),
        );
        assert_eq!(ac.name(), "Atlas/Crusoe");
    }

    #[test]
    fn solver_reproduces_paper_optimum() {
        let best = hera_xscale().solver().unwrap().solve(3.0).unwrap();
        assert_eq!((best.sigma1, best.sigma2), (0.4, 0.4));
        assert!((best.w_opt - 2764.0).abs() < 1.0);
    }

    #[test]
    fn default_io_power_flows_through() {
        let c = hera_xscale();
        let pm = c.power_model().unwrap();
        assert!((pm.p_io - 1550.0 * 0.15f64.powi(3)).abs() < 1e-12);
        let c2 = c.with_p_io(1000.0);
        assert_eq!(c2.power_model().unwrap().p_io, 1000.0);
    }

    #[test]
    fn serde_round_trip() {
        let c = hera_xscale();
        let json = serde_json::to_string(&c).unwrap();
        let back: Configuration = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
