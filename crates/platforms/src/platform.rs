//! Platform parameters (paper Table 1, values from Moody et al. \[18\]).

use rexec_core::ResilienceCosts;
use serde::{Deserialize, Serialize};

/// Identifier of one of the paper's four platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformId {
    /// LLNL Hera: λ = 3.38e-6, C = 300 s, V = 15.4 s.
    Hera,
    /// LLNL Atlas: λ = 7.78e-6, C = 439 s, V = 9.1 s.
    Atlas,
    /// LLNL Coastal: λ = 2.01e-6, C = 1051 s, V = 4.5 s.
    Coastal,
    /// LLNL Coastal with SSDs: λ = 2.01e-6, C = 2500 s, V = 180 s.
    CoastalSsd,
}

impl PlatformId {
    /// All four platforms, in the paper's table order.
    pub const ALL: [PlatformId; 4] = [
        PlatformId::Hera,
        PlatformId::Atlas,
        PlatformId::Coastal,
        PlatformId::CoastalSsd,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::Hera => "Hera",
            PlatformId::Atlas => "Atlas",
            PlatformId::Coastal => "Coastal",
            PlatformId::CoastalSsd => "Coastal SSD",
        }
    }
}

impl std::fmt::Display for PlatformId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A platform: error rate plus resilience costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Which published platform this is.
    pub id: PlatformId,
    /// Silent-error rate `λ` (1/s).
    pub lambda: f64,
    /// Checkpoint time `C` (s).
    pub checkpoint: f64,
    /// Verification time `V` at full speed (s).
    pub verification: f64,
}

impl Platform {
    /// The published parameters for `id` (paper Table 1).
    pub fn get(id: PlatformId) -> Platform {
        let (lambda, checkpoint, verification) = match id {
            PlatformId::Hera => (3.38e-6, 300.0, 15.4),
            PlatformId::Atlas => (7.78e-6, 439.0, 9.1),
            PlatformId::Coastal => (2.01e-6, 1051.0, 4.5),
            PlatformId::CoastalSsd => (2.01e-6, 2500.0, 180.0),
        };
        Platform {
            id,
            lambda,
            checkpoint,
            verification,
        }
    }

    /// Resilience costs with the paper default `R = C`.
    pub fn costs(&self) -> ResilienceCosts {
        ResilienceCosts::symmetric(self.checkpoint, self.verification)
    }

    /// Platform MTBF `µ = 1/λ` (s).
    pub fn mtbf(&self) -> f64 {
        1.0 / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let hera = Platform::get(PlatformId::Hera);
        assert_eq!(hera.lambda, 3.38e-6);
        assert_eq!(hera.checkpoint, 300.0);
        assert_eq!(hera.verification, 15.4);
        let atlas = Platform::get(PlatformId::Atlas);
        assert_eq!(
            (atlas.lambda, atlas.checkpoint, atlas.verification),
            (7.78e-6, 439.0, 9.1)
        );
        let coastal = Platform::get(PlatformId::Coastal);
        assert_eq!(
            (coastal.lambda, coastal.checkpoint, coastal.verification),
            (2.01e-6, 1051.0, 4.5)
        );
        let ssd = Platform::get(PlatformId::CoastalSsd);
        assert_eq!(
            (ssd.lambda, ssd.checkpoint, ssd.verification),
            (2.01e-6, 2500.0, 180.0)
        );
    }

    #[test]
    fn costs_are_symmetric() {
        for id in PlatformId::ALL {
            let p = Platform::get(id);
            let c = p.costs();
            assert_eq!(c.recovery, c.checkpoint, "{id}");
        }
    }

    #[test]
    fn mtbf_is_reciprocal() {
        let p = Platform::get(PlatformId::Coastal);
        assert!((p.mtbf() - 1.0 / 2.01e-6).abs() < 1e-3);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PlatformId::Hera.to_string(), "Hera");
        assert_eq!(PlatformId::CoastalSsd.to_string(), "Coastal SSD");
    }

    #[test]
    fn serde_round_trip() {
        let p = Platform::get(PlatformId::Atlas);
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
