//! Processor parameters (paper Table 2, values from Rizvandi et al. \[20\]).

use rexec_core::{ModelError, SpeedSet};
use serde::{Deserialize, Serialize};

/// Identifier of one of the paper's two DVFS processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessorId {
    /// Intel XScale: speeds {0.15, 0.4, 0.6, 0.8, 1}, P(σ) = 1550σ³ + 60 mW.
    IntelXScale,
    /// Transmeta Crusoe: speeds {0.45, 0.6, 0.8, 0.9, 1}, P(σ) = 5756σ³ + 4.4 mW.
    TransmetaCrusoe,
}

impl ProcessorId {
    /// Both processors, in the paper's table order.
    pub const ALL: [ProcessorId; 2] = [ProcessorId::IntelXScale, ProcessorId::TransmetaCrusoe];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ProcessorId::IntelXScale => "Intel XScale",
            ProcessorId::TransmetaCrusoe => "Transmeta Crusoe",
        }
    }

    /// Short name used in figure captions ("XScale", "Crusoe").
    pub fn short_name(self) -> &'static str {
        match self {
            ProcessorId::IntelXScale => "XScale",
            ProcessorId::TransmetaCrusoe => "Crusoe",
        }
    }
}

impl std::fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A DVFS processor: normalized speed set and cube-law power parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Which published processor this is.
    pub id: ProcessorId,
    /// Normalized speeds, ascending.
    pub speeds: Vec<f64>,
    /// Cube-law coefficient `κ` of `P(σ) = κσ³ + Pidle` (mW).
    pub kappa: f64,
    /// Static power `Pidle` (mW).
    pub p_idle: f64,
}

impl Processor {
    /// The published parameters for `id` (paper Table 2).
    pub fn get(id: ProcessorId) -> Processor {
        match id {
            ProcessorId::IntelXScale => Processor {
                id,
                speeds: vec![0.15, 0.4, 0.6, 0.8, 1.0],
                kappa: 1550.0,
                p_idle: 60.0,
            },
            ProcessorId::TransmetaCrusoe => Processor {
                id,
                speeds: vec![0.45, 0.6, 0.8, 0.9, 1.0],
                kappa: 5756.0,
                p_idle: 4.4,
            },
        }
    }

    /// Validated [`SpeedSet`] of this processor.
    pub fn speed_set(&self) -> Result<SpeedSet, ModelError> {
        SpeedSet::new(self.speeds.clone())
    }

    /// Total power at speed `σ`: `κσ³ + Pidle` (mW).
    pub fn power(&self, sigma: f64) -> f64 {
        self.kappa * sigma.powi(3) + self.p_idle
    }

    /// Slowest available speed.
    pub fn min_speed(&self) -> f64 {
        self.speeds.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The paper's default I/O power for this processor: the dynamic CPU
    /// power at the slowest speed, `κ·σ_min³` (mW).
    pub fn default_p_io(&self) -> f64 {
        self.kappa * self.min_speed().powi(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let x = Processor::get(ProcessorId::IntelXScale);
        assert_eq!(x.speeds, vec![0.15, 0.4, 0.6, 0.8, 1.0]);
        assert!((x.power(1.0) - 1610.0).abs() < 1e-9);
        let c = Processor::get(ProcessorId::TransmetaCrusoe);
        assert_eq!(c.speeds, vec![0.45, 0.6, 0.8, 0.9, 1.0]);
        assert!((c.power(1.0) - 5760.4).abs() < 1e-9);
    }

    #[test]
    fn default_io_power() {
        let x = Processor::get(ProcessorId::IntelXScale);
        assert!((x.default_p_io() - 1550.0 * 0.15f64.powi(3)).abs() < 1e-12);
        let c = Processor::get(ProcessorId::TransmetaCrusoe);
        assert!((c.default_p_io() - 5756.0 * 0.45f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn speed_sets_validate() {
        for id in ProcessorId::ALL {
            let p = Processor::get(id);
            let s = p.speed_set().unwrap();
            assert_eq!(s.len(), 5);
            assert_eq!(s.max(), 1.0);
            assert_eq!(s.min(), p.min_speed());
        }
    }

    #[test]
    fn names() {
        assert_eq!(ProcessorId::IntelXScale.short_name(), "XScale");
        assert_eq!(ProcessorId::TransmetaCrusoe.to_string(), "Transmeta Crusoe");
    }

    #[test]
    fn serde_round_trip() {
        let p = Processor::get(ProcessorId::TransmetaCrusoe);
        let json = serde_json::to_string(&p).unwrap();
        let back: Processor = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
