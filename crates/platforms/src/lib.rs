//! # rexec-platforms
//!
//! The published configurations used in the paper's evaluation (§4.1):
//!
//! * **Platforms** (Table 1, from Moody et al. \[18\]): Hera, Atlas, Coastal
//!   and Coastal SSD — each defined by a silent-error rate `λ`, a
//!   checkpoint time `C` and a verification time `V`.
//! * **Processors** (Table 2, from Rizvandi et al. \[20\]): Intel XScale and
//!   Transmeta Crusoe — each defined by a set of normalized speeds and a
//!   power law `P(σ) = κσ³ + Pidle`.
//!
//! A [`Configuration`] pairs one platform with one
//! processor; [`catalog`] enumerates the eight virtual configurations of
//! the paper with its default settings (`R = C`, `Pio = κσ_min³`, `ρ = 3`).

#![warn(missing_docs)]
pub mod catalog;
pub mod config;
pub mod platform;
pub mod processor;

pub use catalog::{all_configurations, configuration, ConfigId};
pub use config::Configuration;
pub use platform::{Platform, PlatformId};
pub use processor::{Processor, ProcessorId};

/// Common re-exports.
pub mod prelude {
    pub use crate::catalog::{all_configurations, configuration, ConfigId};
    pub use crate::config::Configuration;
    pub use crate::platform::{Platform, PlatformId};
    pub use crate::processor::{Processor, ProcessorId};
}
