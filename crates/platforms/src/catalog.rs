//! Catalog of the paper's eight virtual configurations.

use crate::config::Configuration;
use crate::platform::{Platform, PlatformId};
use crate::processor::{Processor, ProcessorId};
use serde::{Deserialize, Serialize};

/// Identifier of a virtual configuration (platform × processor), named
/// after the paper figure it anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfigId {
    /// The platform half.
    pub platform: PlatformId,
    /// The processor half.
    pub processor: ProcessorId,
}

impl ConfigId {
    /// The eight configurations in the order the paper presents them:
    /// Atlas/Crusoe first (Figures 2–7), then the XScale column (Figures
    /// 8–11), then the remaining Crusoe rows (Figures 12–14).
    pub const ALL: [ConfigId; 8] = [
        ConfigId {
            platform: PlatformId::Atlas,
            processor: ProcessorId::TransmetaCrusoe,
        },
        ConfigId {
            platform: PlatformId::Hera,
            processor: ProcessorId::IntelXScale,
        },
        ConfigId {
            platform: PlatformId::Atlas,
            processor: ProcessorId::IntelXScale,
        },
        ConfigId {
            platform: PlatformId::Coastal,
            processor: ProcessorId::IntelXScale,
        },
        ConfigId {
            platform: PlatformId::CoastalSsd,
            processor: ProcessorId::IntelXScale,
        },
        ConfigId {
            platform: PlatformId::Hera,
            processor: ProcessorId::TransmetaCrusoe,
        },
        ConfigId {
            platform: PlatformId::Coastal,
            processor: ProcessorId::TransmetaCrusoe,
        },
        ConfigId {
            platform: PlatformId::CoastalSsd,
            processor: ProcessorId::TransmetaCrusoe,
        },
    ];

    /// The paper figure whose sweeps this configuration anchors
    /// (Figures 2–7 all show Atlas/Crusoe; 8–14 show one config each).
    pub fn figure(&self) -> &'static str {
        match (self.platform, self.processor) {
            (PlatformId::Atlas, ProcessorId::TransmetaCrusoe) => "Figures 2-7",
            (PlatformId::Hera, ProcessorId::IntelXScale) => "Figure 8",
            (PlatformId::Atlas, ProcessorId::IntelXScale) => "Figure 9",
            (PlatformId::Coastal, ProcessorId::IntelXScale) => "Figure 10",
            (PlatformId::CoastalSsd, ProcessorId::IntelXScale) => "Figure 11",
            (PlatformId::Hera, ProcessorId::TransmetaCrusoe) => "Figure 12",
            (PlatformId::Coastal, ProcessorId::TransmetaCrusoe) => "Figure 13",
            (PlatformId::CoastalSsd, ProcessorId::TransmetaCrusoe) => "Figure 14",
        }
    }
}

impl std::fmt::Display for ConfigId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}",
            self.platform.name(),
            self.processor.short_name()
        )
    }
}

/// Builds the configuration for an id, with paper defaults.
pub fn configuration(id: ConfigId) -> Configuration {
    Configuration::new(Platform::get(id.platform), Processor::get(id.processor))
}

/// All eight virtual configurations, in paper order.
pub fn all_configurations() -> Vec<Configuration> {
    ConfigId::ALL.iter().map(|&id| configuration(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_distinct_configurations() {
        let all = all_configurations();
        assert_eq!(all.len(), 8);
        let mut names: Vec<String> = all.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn atlas_crusoe_is_first() {
        assert_eq!(all_configurations()[0].name(), "Atlas/Crusoe");
    }

    #[test]
    fn figures_cover_2_through_14() {
        let figs: Vec<_> = ConfigId::ALL.iter().map(|c| c.figure()).collect();
        assert_eq!(figs[0], "Figures 2-7");
        assert_eq!(figs[7], "Figure 14");
    }

    #[test]
    fn every_configuration_solves_at_default_rho() {
        for c in all_configurations() {
            let solver = c.solver().unwrap();
            let best = solver.solve(Configuration::DEFAULT_RHO);
            assert!(best.is_some(), "{} must be feasible at ρ = 3", c.name());
        }
    }

    #[test]
    fn display_matches_name() {
        for id in ConfigId::ALL {
            assert_eq!(id.to_string(), configuration(id).name());
        }
    }
}
