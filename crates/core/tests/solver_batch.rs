//! Property tests pinning the struct-of-arrays batch kernel to the
//! scalar per-point solver: for *any* platform the two must agree bit
//! for bit, on feasible and infeasible points alike.
//!
//! The unit tests in `bicrit.rs` check fixed fixtures (the paper's
//! Hera/XScale platform, a K = 20 synthetic table); these properties
//! randomize the platform — error rate, resilience costs, power model,
//! speed-set size and spacing — and the ρ grid, deliberately sampling
//! bounds below `min_feasible_rho` so whole points come back `None`.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use rexec_core::{BiCritSolver, PowerModel, ResilienceCosts, SilentModel, SpeedSet};

/// Builds a solver from raw sampled parameters. Every range below is
/// inside the constructors' domains, so none of these `unwrap`s can
/// fire; the interesting variation (table size, speed spacing, grid
/// feasibility) is all in the sampled values.
fn solver_from(
    lambda: f64,
    checkpoint: f64,
    verification: f64,
    kappa: f64,
    speeds: &[f64],
) -> BiCritSolver {
    let model = SilentModel::new(
        lambda,
        ResilienceCosts::symmetric(checkpoint, verification),
        PowerModel::with_default_io(kappa, 60.0, 0.15).unwrap(),
    )
    .unwrap();
    let speeds = SpeedSet::new(speeds.to_vec()).unwrap();
    BiCritSolver::new(model, speeds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `solve_many` must equal `solve` per point, bit for bit, for any
    /// platform and any ρ grid — including infeasible bounds (a grid
    /// starting at 0.3 sits below every platform's `min_feasible_rho`,
    /// so each case exercises the `None` path too).
    #[test]
    fn batched_solve_matches_scalar_on_random_platforms(
        lambda in 1e-7f64..1e-4,
        checkpoint in 30.0f64..900.0,
        verification in 1.0f64..40.0,
        kappa in 200.0f64..3000.0,
        speeds in proptest::collection::vec(0.12f64..1.3, 2..24),
        rhos in proptest::collection::vec(0.3f64..8.0, 1..80),
    ) {
        let solver = solver_from(lambda, checkpoint, verification, kappa, &speeds);
        let batched = solver.solve_many(&rhos);
        prop_assert_eq!(batched.len(), rhos.len());
        let mut feasible = 0usize;
        for (sol, &rho) in batched.iter().zip(&rhos) {
            let scalar = solver.solve(rho);
            prop_assert_eq!(*sol, scalar, "ρ = {}", rho);
            feasible += usize::from(sol.is_some());
            if let Some(s) = sol {
                // Bit-level agreement on the objective column, not just
                // `PartialEq` (which would also accept 0.0 == -0.0).
                prop_assert_eq!(
                    s.energy_overhead.to_bits(),
                    scalar.unwrap().energy_overhead.to_bits()
                );
            }
        }
        // The grid floor (0.3) is below any platform's feasibility
        // threshold, so unless the sampled grid happens to sit entirely
        // high, both paths should have seen real `None`s; nothing to
        // assert beyond agreement, but track it for the sanity check
        // below.
        let _ = feasible;
    }

    /// Same property for the one-speed (diagonal) kernel, which sweeps
    /// the σ₁ = σ₂ column family at a non-unit stride.
    #[test]
    fn batched_one_speed_matches_scalar_on_random_platforms(
        lambda in 1e-7f64..1e-4,
        checkpoint in 30.0f64..900.0,
        verification in 1.0f64..40.0,
        kappa in 200.0f64..3000.0,
        speeds in proptest::collection::vec(0.12f64..1.3, 2..24),
        rhos in proptest::collection::vec(0.3f64..8.0, 1..80),
    ) {
        let solver = solver_from(lambda, checkpoint, verification, kappa, &speeds);
        let batched = solver.solve_one_speed_many(&rhos);
        for (sol, &rho) in batched.iter().zip(&rhos) {
            prop_assert_eq!(*sol, solver.solve_one_speed(rho), "ρ = {}", rho);
            if let Some(s) = sol {
                prop_assert!(s.sigma1 == s.sigma2);
            }
        }
    }

    /// The zero-allocation entry point reuses a dirty buffer without
    /// leaking stale results into the fresh batch.
    #[test]
    fn solve_many_into_clears_previous_contents(
        lambda in 1e-6f64..5e-5,
        speeds in proptest::collection::vec(0.2f64..1.2, 2..8),
        first in proptest::collection::vec(1.0f64..6.0, 1..30),
        second in proptest::collection::vec(0.3f64..8.0, 1..20),
    ) {
        let solver = solver_from(lambda, 300.0, 15.4, 1550.0, &speeds);
        let mut buf = Vec::new();
        solver.solve_many_into(&first, &mut buf);
        solver.solve_many_into(&second, &mut buf);
        prop_assert_eq!(buf.len(), second.len());
        for (sol, &rho) in buf.iter().zip(&second) {
            prop_assert_eq!(*sol, solver.solve(rho), "ρ = {}", rho);
        }
    }
}
