//! Per-attempt re-execution speed *schedules* (σ₂, σ₃, …) and the
//! deadline-constrained (quantile-bounded) solver variant.
//!
//! The paper optimizes a single re-execution speed σ₂; this module
//! generalizes the pattern to a schedule that may change speed for each
//! of the first few re-executions before settling on a final speed
//! (attempt `i` runs at `speed_for_attempt(i)`, constant from the last
//! scheduled entry on). With silent errors only, every expectation
//! still has a closed form: a finite prefix sum over the scheduled
//! attempts plus a geometric tail at the settled speed — the same
//! structure as Propositions 2–3, to which [`ScheduleModel`] reduces
//! exactly when the schedule is the paper's `(σ₁, σ₂)` pair (pinned by
//! test).
//!
//! Because `T` is *deterministic given the attempt count* in the
//! silent-error model, quantiles of `T` are exact too:
//! [`ScheduleModel::quantile_time`] inverts the geometric attempt-count
//! law instead of sampling. [`solve_quantile`] uses it to bound a
//! quantile of `T/W` (a probabilistic deadline) rather than only the
//! expectation the BiCrit solver bounds.

use crate::numeric::{self, ConstrainedOptimum};
use crate::pattern::SilentModel;
use crate::speed::SpeedSet;
use crate::validate::{positive, ModelError};
use serde::{Deserialize, Serialize};

/// A per-attempt speed plan: the first execution runs at `sigma1`,
/// re-execution `i ≥ 1` at `retries[min(i, len) - 1]` — i.e. the
/// schedule settles on its last entry once the explicit prefix is
/// exhausted. `retries = [σ₂]` is exactly the paper's two-speed
/// pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedSchedule {
    /// Speed of the first execution (σ₁).
    pub sigma1: f64,
    retries: Vec<f64>,
}

impl SpeedSchedule {
    /// Creates a validated schedule. `retries` must be non-empty and
    /// every speed finite and strictly positive.
    ///
    /// # Errors
    /// [`ModelError::Positive`] on a bad speed,
    /// [`ModelError::EmptySpeedSet`] when `retries` is empty.
    pub fn new(sigma1: f64, retries: Vec<f64>) -> Result<Self, ModelError> {
        positive("sigma1", sigma1)?;
        if retries.is_empty() {
            return Err(ModelError::EmptySpeedSet);
        }
        for &s in &retries {
            positive("retry speed", s)?;
        }
        Ok(SpeedSchedule { sigma1, retries })
    }

    /// The paper's two-speed pattern as a schedule.
    pub fn two_speed(sigma1: f64, sigma2: f64) -> Result<Self, ModelError> {
        SpeedSchedule::new(sigma1, vec![sigma2])
    }

    /// Speed of attempt `i` (0-based; attempt 0 is the first execution).
    #[inline]
    pub fn speed_for_attempt(&self, i: u32) -> f64 {
        if i == 0 {
            self.sigma1
        } else {
            self.retries[(i as usize).min(self.retries.len()) - 1]
        }
    }

    /// The explicit re-execution speeds (σ₂, σ₃, …).
    pub fn retries(&self) -> &[f64] {
        &self.retries
    }

    /// The speed every attempt beyond the explicit prefix runs at.
    #[inline]
    pub fn settled(&self) -> f64 {
        *self.retries.last().expect("retries is non-empty")
    }
}

impl std::fmt::Display for SpeedSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}", self.sigma1)?;
        for s in &self.retries {
            write!(f, ", {s}")?;
        }
        write!(f, ")")
    }
}

/// Exact pattern expectations under a [`SpeedSchedule`] (silent errors
/// only). Generalizes Propositions 1–3 from `(σ₁, σ₂)` to an arbitrary
/// per-attempt speed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleModel {
    /// The underlying silent-error platform model.
    pub model: SilentModel,
    /// The per-attempt speed plan.
    pub schedule: SpeedSchedule,
}

impl ScheduleModel {
    /// Wraps a model and a schedule.
    pub fn new(model: SilentModel, schedule: SpeedSchedule) -> Self {
        ScheduleModel { model, schedule }
    }

    /// Expected time to execute a pattern of `w` work units: checkpoint
    /// plus a prefix sum over the scheduled attempts plus the geometric
    /// tail at the settled speed.
    pub fn expected_time(&self, w: f64) -> f64 {
        let c = self.model.costs.checkpoint;
        let r = self.model.costs.recovery;
        let v = self.model.costs.verification;
        let mut t = c;
        let mut reach = 1.0;
        for i in 0..self.schedule.retries().len() {
            let s = self.schedule.speed_for_attempt(i as u32);
            let p = self.model.p_error(w, s);
            t += reach * ((w + v) / s + p * r);
            reach *= p;
        }
        let s = self.schedule.settled();
        let p = self.model.p_error(w, s);
        t + reach * ((w + v) / s + p * r) / (1.0 - p)
    }

    /// Expected energy: the same structure as [`expected_time`]
    /// (Self::expected_time) with each phase weighted by the power
    /// drawn while it elapses (compute power during work+verification,
    /// I/O power during checkpoint and recovery).
    pub fn expected_energy(&self, w: f64) -> f64 {
        let c = self.model.costs.checkpoint;
        let r = self.model.costs.recovery;
        let v = self.model.costs.verification;
        let p_io = self.model.power.io_power();
        let mut e = c * p_io;
        let mut reach = 1.0;
        for i in 0..self.schedule.retries().len() {
            let s = self.schedule.speed_for_attempt(i as u32);
            let p = self.model.p_error(w, s);
            e += reach * ((w + v) / s * self.model.power.compute_power(s) + p * r * p_io);
            reach *= p;
        }
        let s = self.schedule.settled();
        let p = self.model.p_error(w, s);
        e + reach * ((w + v) / s * self.model.power.compute_power(s) + p * r * p_io) / (1.0 - p)
    }

    /// Expected number of executions until the verification succeeds.
    pub fn expected_executions(&self, w: f64) -> f64 {
        let mut total = 0.0;
        let mut reach = 1.0;
        for i in 0..self.schedule.retries().len() {
            total += reach;
            reach *= self
                .model
                .p_error(w, self.schedule.speed_for_attempt(i as u32));
        }
        total + reach / (1.0 - self.model.p_error(w, self.schedule.settled()))
    }

    /// Exact `q`-quantile of the pattern time, `q ∈ [0, 1)`.
    ///
    /// In the silent-error model `T` is deterministic given the attempt
    /// count `N` (every attempt runs to the verification), and `N`
    /// follows the schedule's generalized-geometric law, so the
    /// quantile inverts `P(N > n) = ∏_{j<n} p_j` exactly: the smallest
    /// `n` with `P(N > n) ≤ 1 − q` yields
    /// `T = C + Σ_{i<n} (W+V)/s_i + (n−1)·R`.
    pub fn quantile_time(&self, w: f64, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile must be in [0, 1)");
        let c = self.model.costs.checkpoint;
        let r = self.model.costs.recovery;
        let v = self.model.costs.verification;
        let ln_tail = (1.0 - q).ln();
        let mut ln_reach = 0.0_f64;
        let mut t_attempts = 0.0_f64;
        // Walk the explicit prefix; each step adds one attempt.
        for i in 0..self.schedule.retries().len() {
            let s = self.schedule.speed_for_attempt(i as u32);
            t_attempts += (w + v) / s;
            ln_reach += self.model.p_error(w, s).ln();
            if ln_reach <= ln_tail {
                return c + t_attempts + i as f64 * r;
            }
        }
        // Settled geometric tail: k further attempts with
        // ln_reach + k·ln(p) ≤ ln_tail.
        let len = self.schedule.retries().len() as f64;
        let s = self.schedule.settled();
        let ln_p = self.model.p_error(w, s).ln();
        if ln_p >= 0.0 {
            // p = 1: the pattern never completes.
            return f64::INFINITY;
        }
        let k = ((ln_tail - ln_reach) / ln_p).ceil().max(1.0);
        let n = len + k;
        c + t_attempts + k * (w + v) / s + (n - 1.0) * r
    }

    /// Expected time per unit of work.
    #[inline]
    pub fn time_overhead(&self, w: f64) -> f64 {
        self.expected_time(w) / w
    }

    /// Expected energy per unit of work.
    #[inline]
    pub fn energy_overhead(&self, w: f64) -> f64 {
        self.expected_energy(w) / w
    }

    /// `q`-quantile of the time per unit of work.
    #[inline]
    pub fn quantile_overhead(&self, w: f64, q: f64) -> f64 {
        self.quantile_time(w, q) / w
    }
}

/// Result of a schedule search: the best schedule, its optimal pattern
/// size and the two overheads there.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSolution {
    /// The winning per-attempt speed plan.
    pub schedule: SpeedSchedule,
    /// Optimal pattern size.
    pub w_opt: f64,
    /// Energy overhead `E/W` at the optimum.
    pub energy_overhead: f64,
    /// Constrained overhead at the optimum: expected `T/W` for
    /// [`solve_schedule`], the bounded quantile of `T/W` for
    /// [`solve_quantile`].
    pub time_overhead: f64,
}

fn best_over_schedules(
    model: &SilentModel,
    speeds: &SpeedSet,
    depth: usize,
    mut constrained: impl FnMut(&ScheduleModel) -> Option<ConstrainedOptimum>,
) -> Option<ScheduleSolution> {
    assert!(depth >= 1, "schedule depth must be at least 1");
    let vals: Vec<f64> = speeds.iter().collect();
    let combos = vals.len().pow(depth as u32);
    let mut best: Option<ScheduleSolution> = None;
    for &s1 in &vals {
        for idx in 0..combos {
            let mut retries = Vec::with_capacity(depth);
            let mut k = idx;
            for _ in 0..depth {
                retries.push(vals[k % vals.len()]);
                k /= vals.len();
            }
            let schedule = SpeedSchedule::new(s1, retries).expect("speed-set entries are valid");
            let sm = ScheduleModel::new(*model, schedule);
            let Some(o) = constrained(&sm) else { continue };
            // Strict improvement + deterministic enumeration order ⇒ a
            // deterministic winner even under exact objective ties.
            if best
                .as_ref()
                .is_none_or(|b| o.objective < b.energy_overhead)
            {
                best = Some(ScheduleSolution {
                    schedule: sm.schedule,
                    w_opt: o.w,
                    energy_overhead: o.objective,
                    time_overhead: o.constraint,
                });
            }
        }
    }
    best
}

/// Schedule search: minimizes the energy overhead over every schedule
/// of `depth` re-execution speeds drawn from `speeds` (the last entry
/// is the settled speed), subject to the expected time overhead
/// `E[T]/W ≤ rho`. `depth = 1` is exactly the exact-numeric BiCrit
/// search over speed pairs.
pub fn solve_schedule(
    model: &SilentModel,
    speeds: &SpeedSet,
    rho: f64,
    depth: usize,
) -> Option<ScheduleSolution> {
    best_over_schedules(model, speeds, depth, |sm| {
        numeric::minimize_with_bound(
            |w| sm.energy_overhead(w),
            |w| sm.time_overhead(w),
            rho,
            numeric::W_MIN,
            numeric::W_MAX,
        )
    })
}

/// Deadline-constrained schedule search: like [`solve_schedule`], but
/// the bound is on the `q`-quantile of `T/W` instead of its
/// expectation — "with probability `q`, the pattern finishes within
/// `rho` seconds per unit of work".
pub fn solve_quantile(
    model: &SilentModel,
    speeds: &SpeedSet,
    rho: f64,
    q: f64,
    depth: usize,
) -> Option<ScheduleSolution> {
    assert!((0.0..1.0).contains(&q), "quantile must be in [0, 1)");
    best_over_schedules(model, speeds, depth, |sm| {
        numeric::minimize_with_bound(
            |w| sm.energy_overhead(w),
            |w| sm.quantile_overhead(w, q),
            rho,
            numeric::W_MIN,
            numeric::W_MAX,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::power::PowerModel;

    fn hera_xscale() -> SilentModel {
        SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    fn speed_set() -> SpeedSet {
        SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap()
    }

    #[test]
    fn two_speed_schedule_matches_propositions() {
        let m = hera_xscale().with_lambda(1e-4);
        let (w, s1, s2) = (2764.0, 0.4, 0.8);
        let sm = ScheduleModel::new(m, SpeedSchedule::two_speed(s1, s2).unwrap());
        let t = m.expected_time(w, s1, s2);
        let e = m.expected_energy(w, s1, s2);
        let n = m.expected_executions(w, s1, s2);
        assert!((sm.expected_time(w) - t).abs() < 1e-9 * t);
        assert!((sm.expected_energy(w) - e).abs() < 1e-9 * e);
        assert!((sm.expected_executions(w) - n).abs() < 1e-12 * n);
    }

    #[test]
    fn constant_longer_schedule_is_still_two_speed() {
        // (σ₁, σ₂, σ₂, σ₂) must equal (σ₁, σ₂) exactly.
        let m = hera_xscale().with_lambda(2e-4);
        let w = 3000.0;
        let a = ScheduleModel::new(m, SpeedSchedule::new(0.6, vec![0.8, 0.8, 0.8]).unwrap());
        let b = ScheduleModel::new(m, SpeedSchedule::two_speed(0.6, 0.8).unwrap());
        assert!((a.expected_time(w) - b.expected_time(w)).abs() < 1e-9 * b.expected_time(w));
        assert!((a.expected_energy(w) - b.expected_energy(w)).abs() < 1e-9 * b.expected_energy(w));
    }

    #[test]
    fn schedule_satisfies_its_defining_recursion() {
        // T(schedule) = (W+V)/σ₁ + p₁·(R + T(rest)) + (1−p₁)·C where
        // `rest` starts the schedule at its first retry speed.
        let m = hera_xscale().with_lambda(1e-4);
        let w = 2000.0;
        let full = ScheduleModel::new(m, SpeedSchedule::new(0.4, vec![0.6, 1.0]).unwrap());
        let rest = ScheduleModel::new(m, SpeedSchedule::new(0.6, vec![1.0]).unwrap());
        let p1 = m.p_error(w, 0.4);
        let lhs = full.expected_time(w);
        let rhs = (w + m.costs.verification) / 0.4
            + p1 * (m.costs.recovery + rest.expected_time(w))
            + (1.0 - p1) * m.costs.checkpoint;
        assert!((lhs - rhs).abs() < 1e-9 * lhs, "{lhs} vs {rhs}");
    }

    #[test]
    fn speed_for_attempt_settles_on_last_entry() {
        let s = SpeedSchedule::new(0.4, vec![0.6, 0.8, 1.0]).unwrap();
        assert_eq!(s.speed_for_attempt(0), 0.4);
        assert_eq!(s.speed_for_attempt(1), 0.6);
        assert_eq!(s.speed_for_attempt(2), 0.8);
        assert_eq!(s.speed_for_attempt(3), 1.0);
        assert_eq!(s.speed_for_attempt(100), 1.0);
        assert_eq!(s.settled(), 1.0);
        assert_eq!(s.retries(), &[0.6, 0.8, 1.0]);
    }

    #[test]
    fn quantile_time_matches_attempt_count_arithmetic() {
        let m = hera_xscale().with_lambda(1e-4);
        let sm = ScheduleModel::new(m, SpeedSchedule::two_speed(0.4, 0.8).unwrap());
        let w = 2764.0;
        let (c, r, v) = (m.costs.checkpoint, m.costs.recovery, m.costs.verification);
        let p1 = m.p_error(w, 0.4);
        // Below the first-failure mass the pattern finishes in 1 attempt.
        let t1 = c + (w + v) / 0.4;
        assert!((sm.quantile_time(w, 0.0) - t1).abs() < 1e-9);
        assert!((sm.quantile_time(w, 1.0 - p1 - 1e-9) - t1).abs() < 1e-9);
        // Just above it, 2 attempts.
        let t2 = t1 + r + (w + v) / 0.8;
        assert!((sm.quantile_time(w, 1.0 - p1 + 1e-9) - t2).abs() < 1e-9);
        // Monotone in q.
        let mut last = 0.0;
        for i in 0..100 {
            let t = sm.quantile_time(w, f64::from(i) / 100.0);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn quantile_time_handles_error_free_patterns() {
        let m = hera_xscale().with_lambda(0.0);
        let sm = ScheduleModel::new(m, SpeedSchedule::two_speed(0.5, 1.0).unwrap());
        let w = 1000.0;
        let t = m.costs.checkpoint + (w + m.costs.verification) / 0.5;
        assert!((sm.quantile_time(w, 0.99) - t).abs() < 1e-9);
    }

    #[test]
    fn depth_one_schedule_search_matches_exact_bicrit() {
        let m = hera_xscale();
        let speeds = speed_set();
        let rho = 3.0;
        let sched = solve_schedule(&m, &speeds, rho, 1).expect("feasible");
        let (s1, s2, exact) = numeric::exact_bicrit_solve(&m, &speeds, rho).expect("feasible");
        assert_eq!(sched.schedule.sigma1, s1);
        assert_eq!(sched.schedule.retries(), &[s2]);
        assert!((sched.energy_overhead - exact.objective).abs() < 1e-9 * exact.objective);
        assert!(sched.time_overhead <= rho * (1.0 + 1e-9));
    }

    #[test]
    fn deeper_schedules_never_lose() {
        // The depth-2 search space contains every depth-1 schedule
        // (constant retries), so its optimum cannot be worse.
        let m = hera_xscale().with_lambda(1e-4);
        let speeds = speed_set();
        let d1 = solve_schedule(&m, &speeds, 3.0, 1).expect("feasible");
        let d2 = solve_schedule(&m, &speeds, 3.0, 2).expect("feasible");
        assert!(d2.energy_overhead <= d1.energy_overhead * (1.0 + 1e-9));
    }

    #[test]
    fn quantile_solver_respects_the_deadline_bound() {
        let m = hera_xscale().with_lambda(1e-4);
        let speeds = speed_set();
        let (rho, q) = (3.0, 0.99);
        let sol = solve_quantile(&m, &speeds, rho, q, 1).expect("feasible");
        let sm = ScheduleModel::new(m, sol.schedule.clone());
        assert!(sm.quantile_overhead(sol.w_opt, q) <= rho * (1.0 + 1e-9));
        // A quantile bound is stricter than the mean bound, so the
        // optimal energy cannot beat the mean-constrained optimum.
        let mean = solve_schedule(&m, &speeds, rho, 1).expect("feasible");
        assert!(sol.energy_overhead >= mean.energy_overhead * (1.0 - 1e-9));
    }

    #[test]
    fn schedule_validation_rejects_bad_speeds() {
        assert!(SpeedSchedule::new(0.0, vec![1.0]).is_err());
        assert!(SpeedSchedule::new(f64::NAN, vec![1.0]).is_err());
        assert!(SpeedSchedule::new(0.5, vec![]).is_err());
        assert!(SpeedSchedule::new(0.5, vec![1.0, -1.0]).is_err());
        assert!(SpeedSchedule::new(0.5, vec![f64::INFINITY]).is_err());
        let s = SpeedSchedule::two_speed(0.5, 1.0).unwrap();
        assert_eq!(format!("{s}"), "(0.5, 1)");
    }
}
