//! First- and second-order overhead approximations.
//!
//! Using the Taylor expansion `e^{λW} = 1 + λW + O(λ²W²)`, the exact
//! overheads of `SilentModel` collapse to the
//! paper's Equations (2) and (3), both of the form
//!
//! ```text
//! overhead(W) = x + y·W + z/W + O(λ²W)
//! ```
//!
//! with positive constants `x`, `y`, `z` — minimized at `W* = √(z/y)`, a
//! Young/Daly-shaped `Θ(λ^{-1/2})` result. The mixed-error model
//! (fail-stop + silent) yields Equations (9) and (10), whose linear
//! coefficient `y` may become *negative* when `σ₂/σ₁ > 2(1 + s/f)`,
//! breaking the first-order approach (paper §5.2); the second-order
//! expansion of the fail-stop-only time overhead is Equation (11).

use crate::mixed::MixedModel;
use crate::pattern::SilentModel;
use serde::{Deserialize, Serialize};

/// Coefficients of an overhead curve `x + y·W + z/W`.
///
/// `x` is the incompressible per-unit cost, `y` the per-unit re-execution
/// risk, `z` the amortized checkpoint/verification cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadCoefficients {
    /// Constant term `x`.
    pub constant: f64,
    /// Coefficient `y` of the term linear in `W`.
    pub linear: f64,
    /// Coefficient `z` of the term in `1/W`.
    pub inverse: f64,
}

impl OverheadCoefficients {
    /// Evaluates `x + y·W + z/W`.
    #[inline]
    pub fn eval(&self, w: f64) -> f64 {
        self.constant + self.linear * w + self.inverse / w
    }

    /// Unconstrained minimizer `W* = √(z/y)`.
    ///
    /// Returns `+∞` when `y ≤ 0` (overhead decreases without bound — the
    /// regime where the first-order approximation is invalid, §5.2) and `0`
    /// when `z = 0` with `y > 0`.
    #[inline]
    pub fn minimizer(&self) -> f64 {
        if self.linear <= 0.0 {
            f64::INFINITY
        } else {
            (self.inverse / self.linear).sqrt()
        }
    }

    /// Minimum value `x + 2√(y·z)` (only meaningful when `y > 0`).
    #[inline]
    pub fn min_value(&self) -> f64 {
        self.constant + 2.0 * (self.linear * self.inverse).sqrt()
    }
}

/// First-order (Taylor) approximations — the paper's working model.
pub struct FirstOrder;

impl FirstOrder {
    /// Coefficients of the time overhead `T(W,σ₁,σ₂)/W`, Equation (2):
    ///
    /// ```text
    /// T/W = 1/σ₁ + λW/(σ₁σ₂) + λR/σ₁ + λV/(σ₁σ₂) + (C + V/σ₁)/W
    /// ```
    pub fn time_coefficients(m: &SilentModel, s1: f64, s2: f64) -> OverheadCoefficients {
        let l = m.lambda;
        let (c, v, r) = (m.costs.checkpoint, m.costs.verification, m.costs.recovery);
        OverheadCoefficients {
            constant: 1.0 / s1 + l * r / s1 + l * v / (s1 * s2),
            linear: l / (s1 * s2),
            inverse: c + v / s1,
        }
    }

    /// Coefficients of the energy overhead `E(W,σ₁,σ₂)/W`, Equation (3):
    ///
    /// ```text
    /// E/W = (κσ₁³+Pidle)/σ₁ + λW/(σ₁σ₂)·(κσ₂³+Pidle)
    ///     + λR/σ₁·(Pio+Pidle) + λV/(σ₁σ₂)·(κσ₁³+Pidle)
    ///     + [C(Pio+Pidle) + V(κσ₁³+Pidle)/σ₁]/W
    /// ```
    pub fn energy_coefficients(m: &SilentModel, s1: f64, s2: f64) -> OverheadCoefficients {
        let l = m.lambda;
        let (c, v, r) = (m.costs.checkpoint, m.costs.verification, m.costs.recovery);
        let p1 = m.power.compute_power(s1);
        let p2 = m.power.compute_power(s2);
        let pio = m.power.io_power();
        OverheadCoefficients {
            constant: p1 / s1 + l * r / s1 * pio + l * v / (s1 * s2) * p1,
            linear: l / (s1 * s2) * p2,
            inverse: c * pio + v * p1 / s1,
        }
    }

    /// First-order time overhead (Equation 2) at pattern size `w`.
    #[inline]
    pub fn time_overhead(m: &SilentModel, w: f64, s1: f64, s2: f64) -> f64 {
        Self::time_coefficients(m, s1, s2).eval(w)
    }

    /// First-order energy overhead (Equation 3) at pattern size `w`.
    #[inline]
    pub fn energy_overhead(m: &SilentModel, w: f64, s1: f64, s2: f64) -> f64 {
        Self::energy_coefficients(m, s1, s2).eval(w)
    }

    /// Coefficients of the mixed-error time overhead, Equation (9):
    ///
    /// ```text
    /// T/W = (C + V/σ₁)/W + ((f+s)/(σ₁σ₂) − f/(2σ₁²))·λW
    ///     + [(f+s)λ(R + V/σ₂) + 1 − fλV/σ₁]/σ₁
    /// ```
    ///
    /// The linear coefficient may be negative when `σ₂/σ₁ > 2(1 + s/f)`.
    pub fn time_coefficients_mixed(m: &MixedModel, s1: f64, s2: f64) -> OverheadCoefficients {
        let lam = m.rates.total();
        let lf = m.rates.fail_stop;
        let (c, v, r) = (m.costs.checkpoint, m.costs.verification, m.costs.recovery);
        OverheadCoefficients {
            constant: (lam * (r + v / s2) + 1.0 - lf * v / s1) / s1,
            linear: lam / (s1 * s2) - lf / (2.0 * s1 * s1),
            inverse: c + v / s1,
        }
    }

    /// Coefficients of the mixed-error energy overhead, Equation (10).
    pub fn energy_coefficients_mixed(m: &MixedModel, s1: f64, s2: f64) -> OverheadCoefficients {
        let lam = m.rates.total();
        let lf = m.rates.fail_stop;
        let (c, v, r) = (m.costs.checkpoint, m.costs.verification, m.costs.recovery);
        let p1 = m.power.compute_power(s1);
        let p2 = m.power.compute_power(s2);
        let pio = m.power.io_power();
        OverheadCoefficients {
            constant: lam * (r * pio + v * p2 / s2) / s1 + (1.0 - lf * v / s1) * p1 / s1,
            linear: lam * p2 / (s1 * s2) - lf * p1 / (2.0 * s1 * s1),
            inverse: c * pio + v * p1 / s1,
        }
    }

    /// Validity window of the first-order approximation for mixed errors
    /// (paper §5.2, assuming `Pidle = 0` for the lower bound): the approach
    /// yields a solution iff
    ///
    /// ```text
    /// (2(1 + s/f))^{-1/2}  <  σ₂/σ₁  <  2(1 + s/f)
    /// ```
    ///
    /// Returns `(lower, upper)` bounds on the ratio `σ₂/σ₁`. With `f = 0`
    /// (silent errors only) the window is `(0, ∞)`.
    pub fn validity_window(fail_stop_fraction: f64) -> (f64, f64) {
        if fail_stop_fraction <= 0.0 {
            return (0.0, f64::INFINITY);
        }
        let s = 1.0 - fail_stop_fraction;
        let upper = 2.0 * (1.0 + s / fail_stop_fraction);
        (upper.powf(-0.5), upper)
    }
}

/// Second-order (Taylor) approximations (paper §5.3).
pub struct SecondOrder;

impl SecondOrder {
    /// Second-order time overhead with **fail-stop errors only**
    /// (Proposition 7, Equation 11):
    ///
    /// ```text
    /// T/W = 1/σ₁ + C/W + (1/(σ₁σ₂) − 1/(2σ₁²))·λW + λR/σ₁
    ///     + (1/(6σ₁³) − 1/(2σ₁²σ₂) + 1/(2σ₁σ₂²))·λ²W²
    /// ```
    pub fn time_overhead_fail_stop(c: f64, r: f64, lambda: f64, w: f64, s1: f64, s2: f64) -> f64 {
        let lin = 1.0 / (s1 * s2) - 1.0 / (2.0 * s1 * s1);
        let quad =
            1.0 / (6.0 * s1 * s1 * s1) - 1.0 / (2.0 * s1 * s1 * s2) + 1.0 / (2.0 * s1 * s2 * s2);
        1.0 / s1 + c / w + lin * lambda * w + lambda * r / s1 + quad * lambda * lambda * w * w
    }

    /// Coefficient of the `λ²W²` term in Equation (11).
    pub fn quadratic_coefficient(s1: f64, s2: f64) -> f64 {
        1.0 / (6.0 * s1 * s1 * s1) - 1.0 / (2.0 * s1 * s1 * s2) + 1.0 / (2.0 * s1 * s2 * s2)
    }

    /// Coefficient of the `λW` term in Equation (11); zero exactly when
    /// `σ₂ = 2σ₁`, the hinge of Theorem 2.
    pub fn linear_coefficient(s1: f64, s2: f64) -> f64 {
        1.0 / (s1 * s2) - 1.0 / (2.0 * s1 * s1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::error_model::ErrorRates;
    use crate::power::PowerModel;

    fn hera_xscale() -> SilentModel {
        SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn paper_energy_overhead_hera_xscale_rho3() {
        // Paper §4.2, ρ = 3 table: σ1 = σ2 = 0.4 → Wopt = 2764, E/W = 416.
        let m = hera_xscale();
        let co = FirstOrder::energy_coefficients(&m, 0.4, 0.4);
        let w = co.minimizer();
        assert!((w - 2764.0).abs() < 1.0, "Wopt = {w}");
        assert!((co.eval(w) - 416.0).abs() < 1.0, "E/W = {}", co.eval(w));
    }

    #[test]
    fn paper_energy_overhead_hera_xscale_rho8_slowest() {
        // ρ = 8 table: σ1 = 0.15, σ2 = 0.4 → Wopt = 1711, E/W = 466.
        let m = hera_xscale();
        let co = FirstOrder::energy_coefficients(&m, 0.15, 0.4);
        let w = co.minimizer();
        assert!((w - 1711.0).abs() < 1.0, "Wopt = {w}");
        assert!((co.eval(w) - 466.0).abs() < 1.0, "E/W = {}", co.eval(w));
    }

    #[test]
    fn first_order_matches_exact_as_lambda_vanishes() {
        let m = hera_xscale();
        let (w, s1, s2) = (3000.0, 0.6, 0.8);
        for &lam in &[1e-5, 1e-6, 1e-7, 1e-8] {
            let ml = m.with_lambda(lam);
            let exact_t = ml.time_overhead(w, s1, s2);
            let fo_t = FirstOrder::time_overhead(&ml, w, s1, s2);
            // Error is O(λ²W): relative gap shrinks linearly with λ.
            let tol = 10.0 * lam * lam * w * w;
            assert!(
                (exact_t - fo_t).abs() < tol.max(1e-9),
                "λ={lam}: exact {exact_t} vs fo {fo_t}"
            );
            let exact_e = ml.energy_overhead(w, s1, s2);
            let fo_e = FirstOrder::energy_overhead(&ml, w, s1, s2);
            // Truncation error is O(λ²W²) relative to the O(1) overhead,
            // i.e. the relative gap shrinks like λW as λ → 0.
            assert!(
                (exact_e - fo_e).abs() / exact_e < 0.2 * lam * w,
                "λ={lam}: exact {exact_e} vs fo {fo_e}"
            );
        }
    }

    #[test]
    fn minimizer_is_stationary_point() {
        let m = hera_xscale();
        let co = FirstOrder::energy_coefficients(&m, 0.4, 0.8);
        let w = co.minimizer();
        let eps = w * 1e-4;
        assert!(co.eval(w) <= co.eval(w - eps));
        assert!(co.eval(w) <= co.eval(w + eps));
        assert!((co.min_value() - co.eval(w)).abs() < 1e-9 * co.min_value());
    }

    #[test]
    fn minimizer_edge_cases() {
        let c = OverheadCoefficients {
            constant: 1.0,
            linear: 0.0,
            inverse: 5.0,
        };
        assert!(c.minimizer().is_infinite());
        let n = OverheadCoefficients {
            constant: 1.0,
            linear: -2.0,
            inverse: 5.0,
        };
        assert!(n.minimizer().is_infinite());
        let z = OverheadCoefficients {
            constant: 1.0,
            linear: 2.0,
            inverse: 0.0,
        };
        assert_eq!(z.minimizer(), 0.0);
    }

    #[test]
    fn mixed_coefficients_reduce_to_silent_when_f_is_zero() {
        let m = hera_xscale();
        let mm = MixedModel::new(ErrorRates::silent_only(m.lambda).unwrap(), m.costs, m.power);
        for (s1, s2) in [(0.4, 0.4), (0.4, 0.8), (1.0, 0.6)] {
            let a = FirstOrder::time_coefficients(&m, s1, s2);
            let b = FirstOrder::time_coefficients_mixed(&mm, s1, s2);
            assert!((a.linear - b.linear).abs() < 1e-15);
            assert!((a.inverse - b.inverse).abs() < 1e-12);
            assert!((a.constant - b.constant).abs() < 1e-12);
            let ae = FirstOrder::energy_coefficients(&m, s1, s2);
            let be = FirstOrder::energy_coefficients_mixed(&mm, s1, s2);
            assert!((ae.linear - be.linear).abs() < 1e-12);
            assert!((ae.inverse - be.inverse).abs() < 1e-9);
            // Eq (10) evaluates V's re-execution power at σ2 while Eq (3)
            // uses σ1 — a first-order-equivalent difference of order λV.
            assert!((ae.constant - be.constant).abs() / ae.constant < 1e-3);
        }
    }

    #[test]
    fn mixed_linear_coefficient_sign_flips_at_ratio_two_for_fail_stop_only() {
        let mm = MixedModel::new(
            ErrorRates::fail_stop_only(1e-5).unwrap(),
            ResilienceCosts::symmetric(300.0, 0.0),
            PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
        );
        // f = 1, s = 0 ⇒ threshold σ2/σ1 = 2.
        let below = FirstOrder::time_coefficients_mixed(&mm, 0.4, 0.79).linear;
        let at = FirstOrder::time_coefficients_mixed(&mm, 0.4, 0.8).linear;
        let above = FirstOrder::time_coefficients_mixed(&mm, 0.4, 0.81).linear;
        assert!(below > 0.0);
        assert!(at.abs() < 1e-12);
        assert!(above < 0.0);
    }

    #[test]
    fn validity_window_shapes() {
        // f = 1 (fail-stop only): window is (1/√2, 2).
        let (lo, hi) = FirstOrder::validity_window(1.0);
        assert!((hi - 2.0).abs() < 1e-12);
        assert!((lo - 0.5f64.sqrt()).abs() < 1e-12);
        // f = 0.5: 2(1 + 1) = 4.
        let (lo2, hi2) = FirstOrder::validity_window(0.5);
        assert!((hi2 - 4.0).abs() < 1e-12);
        assert!((lo2 - 0.5).abs() < 1e-12);
        // f = 0: unbounded.
        let (lo3, hi3) = FirstOrder::validity_window(0.0);
        assert_eq!(lo3, 0.0);
        assert!(hi3.is_infinite());
        // Window is never empty.
        for f in [0.01, 0.1, 0.3, 0.7, 0.99] {
            let (l, h) = FirstOrder::validity_window(f);
            assert!(l < 1.0 && h > 1.0, "window must contain σ2 = σ1");
        }
    }

    #[test]
    fn second_order_linear_coefficient_vanishes_at_double_speed() {
        assert!(SecondOrder::linear_coefficient(0.5, 1.0).abs() < 1e-15);
        assert!(SecondOrder::linear_coefficient(0.5, 0.9) > 0.0);
        assert!(SecondOrder::linear_coefficient(0.5, 1.1) < 0.0);
    }

    #[test]
    fn second_order_quadratic_coefficient_positive_at_double_speed() {
        // At σ2 = 2σ1: 1/(6σ³) − 1/(4σ³) + 1/(8σ³) = 1/(24σ³) > 0.
        let s = 0.5;
        let q = SecondOrder::quadratic_coefficient(s, 2.0 * s);
        assert!((q - 1.0 / (24.0 * s * s * s)).abs() < 1e-12);
    }

    #[test]
    fn second_order_overhead_evaluates_equation_11() {
        let (c, r, lambda, w, s1, s2) = (300.0, 300.0, 1e-5, 10_000.0, 0.5, 1.0);
        let t = SecondOrder::time_overhead_fail_stop(c, r, lambda, w, s1, s2);
        let manual = 1.0 / s1
            + c / w
            + SecondOrder::linear_coefficient(s1, s2) * lambda * w
            + lambda * r / s1
            + SecondOrder::quadratic_coefficient(s1, s2) * lambda * lambda * w * w;
        assert!((t - manual).abs() < 1e-12);
    }
}
