//! Numerically robust quadratic-equation solver.
//!
//! Theorem 1 reduces the performance constraint `T(W)/W ≤ ρ` to a quadratic
//! inequality `aW² + bW + c ≤ 0` with `a, c > 0`; the feasible region is the
//! interval between the two real roots. The textbook formula
//! `(−b ± √(b²−4ac)) / 2a` loses precision when `b² ≫ 4ac`, so the smaller
//! root is computed via Vieta's formulas.

/// Real roots of `a·x² + b·x + c = 0`, ascending.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Roots {
    /// No real root (negative discriminant), or degenerate with no solution.
    None,
    /// A single (double or linear) root.
    One(f64),
    /// Two distinct roots `(smaller, larger)`.
    Two(f64, f64),
}

/// Solves `a·x² + b·x + c = 0` robustly.
///
/// Handles the degenerate linear case `a == 0` and uses the
/// cancellation-free evaluation `q = −(b + sign(b)·√disc)/2`,
/// `x₁ = q/a`, `x₂ = c/q`.
pub fn solve_quadratic(a: f64, b: f64, c: f64) -> Roots {
    if a == 0.0 {
        if b == 0.0 {
            return Roots::None; // constant equation: either no or infinitely many roots
        }
        return Roots::One(-c / b);
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Roots::None;
    }
    if disc == 0.0 {
        return Roots::One(-b / (2.0 * a));
    }
    let sqrt_disc = disc.sqrt();
    let q = -0.5 * (b + b.signum() * sqrt_disc);
    let (x1, x2) = if q == 0.0 {
        // b == 0: symmetric roots.
        let r = sqrt_disc / (2.0 * a);
        (-r, r)
    } else {
        (q / a, c / q)
    };
    if x1 <= x2 {
        Roots::Two(x1, x2)
    } else {
        Roots::Two(x2, x1)
    }
}

/// SIMD lane width the batched solver kernels are tuned for: 8 `f64`s
/// span two AVX2 registers (or one AVX-512 register). The sweep helpers
/// below take runtime-length slices — the loop vectorizer picks the
/// actual register width — but chunk accounting and the alignment of
/// scratch buffers use this constant.
pub const LANE_WIDTH: usize = 8;

/// Column-sweep **common path** of [`solve_quadratic`] for the Theorem-1
/// kernel: for each index `i` computes the ascending real roots of
/// `a[i]·x² + (b0[i] − rho)·x + c[i] = 0` into `(lo[i], hi[i])` and the
/// discriminant into `disc[i]`, using bit-for-bit the same arithmetic as
/// the scalar solver (Vieta's `q = −(b + sign(b)·√disc)/2`, `x₁ = q/a`,
/// `x₂ = c/q`).
///
/// The body is branchless (comparisons become selects) and free of
/// bounds checks, so the autovectorizer turns the sweep into SIMD; the
/// price is that the rare scalar branches are **not** modeled here.
/// Callers must recompute through [`solve_quadratic`] any index where
///
/// * `a[i] == 0` (linear constraint — no quadratic at all),
/// * `disc[i] == 0` (double root: the scalar path returns `−b/(2a)`,
///   which is not bitwise `c/q`), or
/// * `b0[i] == rho` (i.e. `b == 0`: the scalar path returns the
///   symmetric pair `±√disc/(2a)`),
///
/// and must treat lanes with `disc[i] < 0` as rootless. Inputs are
/// assumed finite (`rho` non-NaN); lanes that violate the contract
/// produce garbage that the caller masks out.
///
/// `fourac[i]` must hold the precomputed product `4.0 * a[i] * c[i]`
/// (left-to-right, the exact rounded value the scalar solver forms), so
/// the ρ-independent half of the discriminant is paid once per table
/// instead of once per sweep.
///
/// # Panics
///
/// If the slices do not all share `a.len()`.
#[inline]
#[allow(clippy::too_many_arguments)] // parallel SoA columns, not a config bag
pub fn roots_sweep(
    a: &[f64],
    b0: &[f64],
    c: &[f64],
    fourac: &[f64],
    rho: f64,
    lo: &mut [f64],
    hi: &mut [f64],
    disc: &mut [f64],
) {
    let n = a.len();
    // Equal-length rebindings let LLVM hoist every bounds check out of
    // the loop, which is what keeps the body vectorizable.
    let (b0, c, fourac) = (&b0[..n], &c[..n], &fourac[..n]);
    let (lo, hi, disc) = (&mut lo[..n], &mut hi[..n], &mut disc[..n]);
    for i in 0..n {
        let b = b0[i] - rho;
        let d = b * b - fourac[i];
        let sqrt_d = d.sqrt();
        // `b.signum()` without the NaN branch: `b` is finite here, and
        // `b0 − rho` cannot be `−0.0` under round-to-nearest.
        let sgn = if b < 0.0 { -1.0 } else { 1.0 };
        let q = -0.5 * (b + sgn * sqrt_d);
        let x1 = q / a[i];
        let x2 = c[i] / q;
        lo[i] = if x1 <= x2 { x1 } else { x2 };
        hi[i] = if x1 <= x2 { x2 } else { x1 };
        disc[i] = d;
    }
}

impl Roots {
    /// The two roots as an ordered pair, collapsing `One` to equal values.
    pub fn pair(self) -> Option<(f64, f64)> {
        match self {
            Roots::None => None,
            Roots::One(x) => Some((x, x)),
            Roots::Two(x1, x2) => Some((x1, x2)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_root(a: f64, b: f64, c: f64, x: f64) {
        let v = a * x * x + b * x + c;
        let scale = (a * x * x).abs().max((b * x).abs()).max(c.abs()).max(1.0);
        assert!(v.abs() <= 1e-9 * scale, "residual {v} for root {x}");
    }

    #[test]
    fn simple_roots() {
        match solve_quadratic(1.0, -3.0, 2.0) {
            Roots::Two(x1, x2) => {
                assert!((x1 - 1.0).abs() < 1e-12);
                assert!((x2 - 2.0).abs() < 1e-12);
            }
            r => panic!("expected two roots, got {r:?}"),
        }
    }

    #[test]
    fn no_real_roots() {
        assert_eq!(solve_quadratic(1.0, 0.0, 1.0), Roots::None);
    }

    #[test]
    fn double_root() {
        assert_eq!(solve_quadratic(1.0, -2.0, 1.0), Roots::One(1.0));
    }

    #[test]
    fn linear_case() {
        assert_eq!(solve_quadratic(0.0, 2.0, -4.0), Roots::One(2.0));
        assert_eq!(solve_quadratic(0.0, 0.0, 1.0), Roots::None);
    }

    #[test]
    fn symmetric_case_b_zero() {
        match solve_quadratic(1.0, 0.0, -4.0) {
            Roots::Two(x1, x2) => {
                assert!((x1 + 2.0).abs() < 1e-12);
                assert!((x2 - 2.0).abs() < 1e-12);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn extreme_cancellation_is_handled() {
        // b² ≫ 4ac: naive formula would return 0 for the small root.
        let (a, b, c) = (1.0, -1e8, 1.0);
        match solve_quadratic(a, b, c) {
            Roots::Two(x1, x2) => {
                assert_root(a, b, c, x1);
                assert_root(a, b, c, x2);
                assert!(x1 > 0.0, "small root must be positive, got {x1}");
                assert!((x1 - 1e-8).abs() < 1e-16);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn theorem1_shaped_coefficients() {
        // Shape from Theorem 1: a = λ/(σ1σ2), b negative, c = C + V/σ1.
        let a = 3.38e-6 / 0.16;
        let b = 2.5 - 3.0; // 1/σ1 + small terms − ρ
        let c = 300.0 + 38.5;
        match solve_quadratic(a, b, c) {
            Roots::Two(x1, x2) => {
                assert_root(a, b, c, x1);
                assert_root(a, b, c, x2);
                assert!(x1 > 0.0 && x2 > x1);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn roots_sweep_bit_identical_to_scalar_on_common_path() {
        // Theorem-1-shaped lanes: a = λ/(σ1σ2) spread over a few orders of
        // magnitude, c = C + V/σ1, and both feasible and infeasible lanes.
        let a = [
            2.1e-5, 3.38e-6, 8.4e-6, 1.3e-5, 5.6e-5, 2.8e-6, 4.2e-5, 9.9e-6,
        ];
        let b0 = [2.5, 1.1, 1.7, 6.7, 2.0, 1.3, 5.0, 1.05];
        let c = [338.5, 315.4, 302.0, 402.7, 338.5, 315.4, 350.0, 300.1];
        let (mut lo, mut hi, mut disc) = ([0.0; LANE_WIDTH], [0.0; LANE_WIDTH], [0.0; LANE_WIDTH]);
        let fourac: Vec<f64> = (0..LANE_WIDTH).map(|i| 4.0 * a[i] * c[i]).collect();
        for rho in [1.2, 1.4, 1.775, 3.0, 8.0, 1e6] {
            roots_sweep(&a, &b0, &c, &fourac, rho, &mut lo, &mut hi, &mut disc);
            for i in 0..LANE_WIDTH {
                let b = b0[i] - rho;
                assert_eq!(disc[i].to_bits(), (b * b - 4.0 * a[i] * c[i]).to_bits());
                if disc[i] <= 0.0 || b == 0.0 {
                    continue; // rare/rootless lanes: caller recomputes
                }
                match solve_quadratic(a[i], b, c[i]) {
                    Roots::Two(x1, x2) => {
                        assert_eq!(lo[i].to_bits(), x1.to_bits(), "lane {i} ρ={rho}");
                        assert_eq!(hi[i].to_bits(), x2.to_bits(), "lane {i} ρ={rho}");
                    }
                    r => panic!("lane {i} ρ={rho}: {r:?}"),
                }
            }
        }
    }

    #[test]
    fn pair_collapses_one() {
        assert_eq!(solve_quadratic(1.0, -2.0, 1.0).pair(), Some((1.0, 1.0)));
        assert_eq!(solve_quadratic(1.0, 0.0, 1.0).pair(), None);
    }
}
