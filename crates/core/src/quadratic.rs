//! Numerically robust quadratic-equation solver.
//!
//! Theorem 1 reduces the performance constraint `T(W)/W ≤ ρ` to a quadratic
//! inequality `aW² + bW + c ≤ 0` with `a, c > 0`; the feasible region is the
//! interval between the two real roots. The textbook formula
//! `(−b ± √(b²−4ac)) / 2a` loses precision when `b² ≫ 4ac`, so the smaller
//! root is computed via Vieta's formulas.

/// Real roots of `a·x² + b·x + c = 0`, ascending.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Roots {
    /// No real root (negative discriminant), or degenerate with no solution.
    None,
    /// A single (double or linear) root.
    One(f64),
    /// Two distinct roots `(smaller, larger)`.
    Two(f64, f64),
}

/// Solves `a·x² + b·x + c = 0` robustly.
///
/// Handles the degenerate linear case `a == 0` and uses the
/// cancellation-free evaluation `q = −(b + sign(b)·√disc)/2`,
/// `x₁ = q/a`, `x₂ = c/q`.
pub fn solve_quadratic(a: f64, b: f64, c: f64) -> Roots {
    if a == 0.0 {
        if b == 0.0 {
            return Roots::None; // constant equation: either no or infinitely many roots
        }
        return Roots::One(-c / b);
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Roots::None;
    }
    if disc == 0.0 {
        return Roots::One(-b / (2.0 * a));
    }
    let sqrt_disc = disc.sqrt();
    let q = -0.5 * (b + b.signum() * sqrt_disc);
    let (x1, x2) = if q == 0.0 {
        // b == 0: symmetric roots.
        let r = sqrt_disc / (2.0 * a);
        (-r, r)
    } else {
        (q / a, c / q)
    };
    if x1 <= x2 {
        Roots::Two(x1, x2)
    } else {
        Roots::Two(x2, x1)
    }
}

impl Roots {
    /// The two roots as an ordered pair, collapsing `One` to equal values.
    pub fn pair(self) -> Option<(f64, f64)> {
        match self {
            Roots::None => None,
            Roots::One(x) => Some((x, x)),
            Roots::Two(x1, x2) => Some((x1, x2)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_root(a: f64, b: f64, c: f64, x: f64) {
        let v = a * x * x + b * x + c;
        let scale = (a * x * x).abs().max((b * x).abs()).max(c.abs()).max(1.0);
        assert!(v.abs() <= 1e-9 * scale, "residual {v} for root {x}");
    }

    #[test]
    fn simple_roots() {
        match solve_quadratic(1.0, -3.0, 2.0) {
            Roots::Two(x1, x2) => {
                assert!((x1 - 1.0).abs() < 1e-12);
                assert!((x2 - 2.0).abs() < 1e-12);
            }
            r => panic!("expected two roots, got {r:?}"),
        }
    }

    #[test]
    fn no_real_roots() {
        assert_eq!(solve_quadratic(1.0, 0.0, 1.0), Roots::None);
    }

    #[test]
    fn double_root() {
        assert_eq!(solve_quadratic(1.0, -2.0, 1.0), Roots::One(1.0));
    }

    #[test]
    fn linear_case() {
        assert_eq!(solve_quadratic(0.0, 2.0, -4.0), Roots::One(2.0));
        assert_eq!(solve_quadratic(0.0, 0.0, 1.0), Roots::None);
    }

    #[test]
    fn symmetric_case_b_zero() {
        match solve_quadratic(1.0, 0.0, -4.0) {
            Roots::Two(x1, x2) => {
                assert!((x1 + 2.0).abs() < 1e-12);
                assert!((x2 - 2.0).abs() < 1e-12);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn extreme_cancellation_is_handled() {
        // b² ≫ 4ac: naive formula would return 0 for the small root.
        let (a, b, c) = (1.0, -1e8, 1.0);
        match solve_quadratic(a, b, c) {
            Roots::Two(x1, x2) => {
                assert_root(a, b, c, x1);
                assert_root(a, b, c, x2);
                assert!(x1 > 0.0, "small root must be positive, got {x1}");
                assert!((x1 - 1e-8).abs() < 1e-16);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn theorem1_shaped_coefficients() {
        // Shape from Theorem 1: a = λ/(σ1σ2), b negative, c = C + V/σ1.
        let a = 3.38e-6 / 0.16;
        let b = 2.5 - 3.0; // 1/σ1 + small terms − ρ
        let c = 300.0 + 38.5;
        match solve_quadratic(a, b, c) {
            Roots::Two(x1, x2) => {
                assert_root(a, b, c, x1);
                assert_root(a, b, c, x2);
                assert!(x1 > 0.0 && x2 > x1);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn pair_collapses_one() {
        assert_eq!(solve_quadratic(1.0, -2.0, 1.0).pair(), Some((1.0, 1.0)));
        assert_eq!(solve_quadratic(1.0, 0.0, 1.0).pair(), None);
    }
}
