//! # rexec-core
//!
//! Analytic core of `rexec`, a reproduction of *“A different re-execution
//! speed can help”* (Benoit, Cavelan, Le Fèvre, Robert, Sun — INRIA RR-8888 /
//! ICPP 2016).
//!
//! A divisible-load application executes on a platform subject to **silent
//! errors** (and, in the extended model, fail-stop errors). The execution is
//! divided into periodic *patterns*: `W` units of work, a verification, and a
//! checkpoint. The first execution of a pattern runs at DVFS speed `σ₁`; if
//! the verification detects an error the pattern is re-executed — at a
//! possibly *different* speed `σ₂` — until it succeeds.
//!
//! This crate provides:
//!
//! * exact expected time and energy of a pattern
//!   ([`SilentModel`], Propositions 1–3;
//!   [`MixedModel`], Propositions 4–5),
//! * first-order overhead approximations ([`approx`], Equations 2–3 and
//!   9–10) and the second-order expansion (Equation 11),
//! * the closed-form optimal pattern size of **Theorem 1** ([`theorem1`])
//!   together with the per-pair feasibility bound `ρᵢⱼ` (Equation 6),
//! * the `O(K²)` **BiCrit** solver ([`bicrit`]) that minimizes the expected
//!   energy per unit of work subject to a bound `ρ` on the expected time per
//!   unit of work, over a discrete set of speeds,
//! * the classical time-only optimizers ([`mintime`], [`daly`]) used as
//!   baselines, and **Theorem 2** ([`theorem2`]): with fail-stop errors only
//!   and `σ₂ = 2σ₁`, the optimal pattern size scales as `Θ(λ^{-2/3})`
//!   instead of Young/Daly’s `Θ(λ^{-1/2})`,
//! * derivative-free numeric optimizers ([`numeric`]) used to cross-check
//!   every closed form against the exact expectations.
//!
//! ## Conventions
//!
//! * Work `W` is measured in seconds-at-full-speed: executing `W` work at
//!   speed `σ` takes `W/σ` seconds. Speeds are normalized to the fastest
//!   available speed (`σ = 1`).
//! * The verification cost `V` is given at full speed; at speed `σ` it takes
//!   `V/σ` seconds. Checkpoint `C` and recovery `R` are I/O bound and do not
//!   scale with CPU speed.
//! * Power is expressed in milliwatts and energy in millijoules, matching
//!   the processor tables of the paper; any consistent unit system works.
//!
//! ## Quick example
//!
//! ```
//! use rexec_core::prelude::*;
//!
//! // Hera platform, Intel XScale processor (paper §4.1).
//! let model = SilentModel::new(
//!     3.38e-6,
//!     ResilienceCosts::symmetric(300.0, 15.4),
//!     PowerModel::new(1550.0, 60.0, 1550.0 * 0.15f64.powi(3)).unwrap(),
//! )
//! .unwrap();
//! let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
//! let solver = BiCritSolver::new(model, speeds);
//! let best = solver.solve(3.0).expect("rho = 3 is feasible");
//! assert_eq!((best.sigma1, best.sigma2), (0.4, 0.4));
//! assert!((best.w_opt - 2764.0).abs() < 1.0);
//! assert!((best.energy_overhead - 416.0).abs() < 1.0);
//! ```

#![warn(missing_docs)]
pub mod approx;
pub mod bicrit;
pub mod continuous;
pub mod cost;
pub mod daly;
pub mod error_model;
pub mod law;
pub mod mintime;
pub mod mixed;
pub mod multiverif;
pub mod numeric;
pub mod pareto;
pub mod pattern;
pub mod plan;
pub mod power;
pub mod quadratic;
pub mod schedule;
pub mod speed;
pub mod theorem1;
pub mod theorem2;

mod validate;

pub use crate::bicrit::{BiCritSolution, BiCritSolver, SpeedPairReport};
pub use crate::cost::ResilienceCosts;
pub use crate::error_model::ErrorRates;
pub use crate::law::ErrorLaw;
pub use crate::mixed::MixedModel;
pub use crate::multiverif::MultiVerifSolution;
pub use crate::pareto::{ParetoFrontier, ParetoPoint};
pub use crate::pattern::SilentModel;
pub use crate::plan::ExecutionPlan;
pub use crate::power::PowerModel;
pub use crate::schedule::{
    solve_quantile, solve_schedule, ScheduleModel, ScheduleSolution, SpeedSchedule,
};
pub use crate::speed::{Speed, SpeedSet};
pub use crate::validate::ModelError;

/// Convenient glob import of the most common types.
pub mod prelude {
    pub use crate::approx::{FirstOrder, SecondOrder};
    pub use crate::bicrit::{BiCritSolution, BiCritSolver, SpeedPairReport};
    pub use crate::continuous;
    pub use crate::cost::ResilienceCosts;
    pub use crate::daly;
    pub use crate::error_model::ErrorRates;
    pub use crate::law::ErrorLaw;
    pub use crate::mintime::MinTimeSolver;
    pub use crate::mixed::MixedModel;
    pub use crate::multiverif;
    pub use crate::numeric;
    pub use crate::pareto::{ParetoFrontier, ParetoPoint};
    pub use crate::pattern::SilentModel;
    pub use crate::plan::ExecutionPlan;
    pub use crate::power::PowerModel;
    pub use crate::schedule::{
        solve_quantile, solve_schedule, ScheduleModel, ScheduleSolution, SpeedSchedule,
    };
    pub use crate::speed::{Speed, SpeedSet};
    pub use crate::theorem1;
    pub use crate::theorem2;
    pub use crate::validate::ModelError;
}
