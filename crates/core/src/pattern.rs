//! Exact pattern expectations under silent errors (Propositions 1–3).
//!
//! A pattern executes `W` units of work at speed `σ₁`, verifies (`V/σ₁`),
//! and checkpoints (`C`). If the verification detects a silent error, the
//! application recovers (`R`) and re-executes the pattern — at speed `σ₂` —
//! until a verification succeeds.
//!
//! Exact expectations (no Taylor truncation):
//!
//! * Proposition 1 (single speed):
//!   `T(W,σ,σ) = C + e^{λW/σ}·(W+V)/σ + (e^{λW/σ} − 1)·R`
//! * Proposition 2 (two speeds):
//!   `T(W,σ₁,σ₂) = C + (W+V)/σ₁ + (1 − e^{−λW/σ₁})·e^{λW/σ₂}·(R + (W+V)/σ₂)`
//! * Proposition 3 (energy): same structure with each term weighted by the
//!   power drawn while it elapses.

use crate::cost::ResilienceCosts;
use crate::power::PowerModel;
use crate::validate::{non_negative, ModelError};
use serde::{Deserialize, Serialize};

/// Analytic model of a platform subject to **silent errors only**
/// (rate `λ`), with verified checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SilentModel {
    /// Silent-error rate `λ` (1/s).
    pub lambda: f64,
    /// Checkpoint / verification / recovery costs.
    pub costs: ResilienceCosts,
    /// Platform power parameters.
    pub power: PowerModel,
}

impl SilentModel {
    /// Creates a validated model.
    ///
    /// # Errors
    /// [`ModelError::NonNegative`] if `lambda` is negative or non-finite.
    pub fn new(lambda: f64, costs: ResilienceCosts, power: PowerModel) -> Result<Self, ModelError> {
        Ok(SilentModel {
            lambda: non_negative("lambda", lambda)?,
            costs,
            power,
        })
    }

    /// Probability that a silent error strikes while executing `w` units of
    /// work at speed `sigma`: `p = 1 − e^{−λw/σ}`.
    #[inline]
    pub fn p_error(&self, w: f64, sigma: f64) -> f64 {
        crate::error_model::strike_probability(self.lambda, w / sigma)
    }

    /// Proposition 1 — expected time to execute a pattern of size `w` when
    /// **all** executions (first and re-executions) run at speed `sigma`.
    pub fn expected_time_single(&self, w: f64, sigma: f64) -> f64 {
        let c = self.costs.checkpoint;
        let r = self.costs.recovery;
        let wv = (w + self.costs.verification) / sigma;
        let growth = (self.lambda * w / sigma).exp();
        c + growth * wv + (growth - 1.0) * r
    }

    /// Proposition 2 — expected time to execute a pattern of size `w` with
    /// first execution at `sigma1` and all re-executions at `sigma2`.
    pub fn expected_time(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        let c = self.costs.checkpoint;
        let r = self.costs.recovery;
        let v = self.costs.verification;
        let p1 = self.p_error(w, sigma1);
        let growth2 = (self.lambda * w / sigma2).exp();
        c + (w + v) / sigma1 + p1 * growth2 * (r + (w + v) / sigma2)
    }

    /// Proposition 3 — expected energy to execute a pattern of size `w`
    /// with first execution at `sigma1` and re-executions at `sigma2`.
    pub fn expected_energy(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        let c = self.costs.checkpoint;
        let r = self.costs.recovery;
        let v = self.costs.verification;
        let p_io = self.power.io_power();
        let p1 = self.power.compute_power(sigma1);
        let p2 = self.power.compute_power(sigma2);
        let perr1 = self.p_error(w, sigma1);
        let growth2 = (self.lambda * w / sigma2).exp();
        (c + perr1 * growth2 * r) * p_io
            + (w + v) / sigma1 * p1
            + (w + v) / sigma2 * perr1 * growth2 * p2
    }

    /// Exact expected time per unit of work, `T(W,σ₁,σ₂)/W`.
    #[inline]
    pub fn time_overhead(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        self.expected_time(w, sigma1, sigma2) / w
    }

    /// Exact expected energy per unit of work, `E(W,σ₁,σ₂)/W`.
    #[inline]
    pub fn energy_overhead(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        self.expected_energy(w, sigma1, sigma2) / w
    }

    /// Expected number of executions of the pattern (first + re-executions)
    /// until the verification succeeds.
    ///
    /// The first execution always happens; it fails with probability
    /// `p₁ = 1 − e^{−λW/σ₁}`, after which re-executions at `σ₂` each succeed
    /// with probability `e^{−λW/σ₂}`, so the expected count is
    /// `1 + p₁·e^{λW/σ₂}`.
    pub fn expected_executions(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        1.0 + self.p_error(w, sigma1) * (self.lambda * w / sigma2).exp()
    }

    /// Sweep helper: a copy with a different error rate.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sweep helper: a copy with different costs.
    #[must_use]
    pub fn with_costs(mut self, costs: ResilienceCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Sweep helper: a copy with a different power model.
    #[must_use]
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hera platform + Intel XScale processor with the paper's default
    /// `Pio = κ·σ_min³` (see DESIGN.md §2).
    pub(crate) fn hera_xscale() -> SilentModel {
        SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn prop2_reduces_to_prop1_on_diagonal() {
        let m = hera_xscale();
        for &w in &[100.0, 2764.0, 50_000.0] {
            for &s in &[0.15, 0.4, 1.0] {
                let t1 = m.expected_time_single(w, s);
                let t2 = m.expected_time(w, s, s);
                assert!(
                    (t1 - t2).abs() < 1e-9 * t1.max(1.0),
                    "w={w} s={s}: {t1} vs {t2}"
                );
            }
        }
    }

    #[test]
    fn no_errors_means_plain_execution() {
        let m = hera_xscale().with_lambda(0.0);
        let w = 1000.0;
        let t = m.expected_time(w, 0.4, 0.8);
        // C + (W+V)/σ1 only; the re-execution term vanishes.
        let expected = 300.0 + (w + 15.4) / 0.4;
        assert!((t - expected).abs() < 1e-9);
        let e = m.expected_energy(w, 0.4, 0.8);
        let p = m.power;
        let expected_e = 300.0 * p.io_power() + (w + 15.4) / 0.4 * p.compute_power(0.4);
        assert!((e - expected_e).abs() < 1e-9);
        assert!((m.expected_executions(w, 0.4, 0.8) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn time_increases_with_lambda() {
        let m = hera_xscale();
        let w = 5000.0;
        let t_lo = m.with_lambda(1e-7).expected_time(w, 0.4, 0.4);
        let t_mid = m.with_lambda(1e-5).expected_time(w, 0.4, 0.4);
        let t_hi = m.with_lambda(1e-3).expected_time(w, 0.4, 0.4);
        assert!(t_lo < t_mid && t_mid < t_hi);
    }

    #[test]
    fn recursive_equation_fixed_point() {
        // T(W,σ1,σ2) must satisfy its defining recursion:
        // T = (W+V)/σ1 + p1·(R + T(W,σ2,σ2)) + (1−p1)·C.
        let m = hera_xscale().with_lambda(1e-4);
        let (w, s1, s2) = (2000.0, 0.6, 0.9);
        let p1 = m.p_error(w, s1);
        let lhs = m.expected_time(w, s1, s2);
        let rhs = (w + m.costs.verification) / s1
            + p1 * (m.costs.recovery + m.expected_time_single(w, s2))
            + (1.0 - p1) * m.costs.checkpoint;
        assert!((lhs - rhs).abs() < 1e-9 * lhs, "{lhs} vs {rhs}");
    }

    #[test]
    fn single_speed_recursive_equation_fixed_point() {
        // T(W,σ,σ) = (W+V)/σ + p·(R + T) + (1−p)·C.
        let m = hera_xscale().with_lambda(5e-5);
        let (w, s) = (3000.0, 0.8);
        let p = m.p_error(w, s);
        let t = m.expected_time_single(w, s);
        let rhs = (w + m.costs.verification) / s
            + p * (m.costs.recovery + t)
            + (1.0 - p) * m.costs.checkpoint;
        assert!((t - rhs).abs() < 1e-9 * t);
    }

    #[test]
    fn energy_recursive_equation_fixed_point() {
        // E(W,σ1,σ2) = (W+V)/σ1·P(σ1) + p1·(R·Pio + E(W,σ2,σ2)) + (1−p1)·C·Pio.
        let m = hera_xscale().with_lambda(1e-4);
        let (w, s1, s2) = (2000.0, 0.6, 0.9);
        let p1 = m.p_error(w, s1);
        let e_rexec = m.expected_energy(w, s2, s2);
        let lhs = m.expected_energy(w, s1, s2);
        let rhs = (w + m.costs.verification) / s1 * m.power.compute_power(s1)
            + p1 * (m.costs.recovery * m.power.io_power() + e_rexec)
            + (1.0 - p1) * m.costs.checkpoint * m.power.io_power();
        assert!((lhs - rhs).abs() < 1e-9 * lhs, "{lhs} vs {rhs}");
    }

    #[test]
    fn expected_executions_matches_geometric_series() {
        let m = hera_xscale().with_lambda(2e-4);
        let (w, s1, s2) = (4000.0, 0.4, 0.8);
        let p1 = m.p_error(w, s1);
        let p2 = m.p_error(w, s2);
        // 1 + p1·(1 + p2 + p2² + …) = 1 + p1/(1−p2).
        let expected = 1.0 + p1 / (1.0 - p2);
        let got = m.expected_executions(w, s1, s2);
        assert!((got - expected).abs() < 1e-12 * expected);
    }

    #[test]
    fn faster_reexecution_shortens_expected_time_at_high_lambda() {
        let m = hera_xscale().with_lambda(1e-3);
        let w = 3000.0;
        let slow = m.expected_time(w, 0.4, 0.4);
        let fast = m.expected_time(w, 0.4, 1.0);
        assert!(fast < slow);
    }

    #[test]
    fn rejects_invalid_lambda() {
        let c = ResilienceCosts::symmetric(300.0, 15.4);
        let p = PowerModel::new(1550.0, 60.0, 0.0).unwrap();
        assert!(SilentModel::new(-1.0, c, p).is_err());
        assert!(SilentModel::new(f64::NAN, c, p).is_err());
    }

    #[test]
    fn overheads_divide_by_w() {
        let m = hera_xscale();
        let (w, s1, s2) = (2764.0, 0.4, 0.4);
        assert!((m.time_overhead(w, s1, s2) - m.expected_time(w, s1, s2) / w).abs() < 1e-15);
        assert!((m.energy_overhead(w, s1, s2) - m.expected_energy(w, s1, s2) / w).abs() < 1e-12);
    }

    #[test]
    fn builders_replace_fields() {
        let m = hera_xscale()
            .with_costs(ResilienceCosts::symmetric(100.0, 1.0))
            .with_power(PowerModel::new(1.0, 2.0, 3.0).unwrap())
            .with_lambda(9.9e-9);
        assert_eq!(m.costs.checkpoint, 100.0);
        assert_eq!(m.power.kappa, 1.0);
        assert_eq!(m.lambda, 9.9e-9);
    }
}
