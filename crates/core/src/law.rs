//! Inter-error time laws beyond the exponential (memoryless) model.
//!
//! The paper assumes Poisson error processes, so inter-error times are
//! exponential and every attempt is a fresh Bernoulli trial — the
//! property the simulator's geometric fast path is built on. Real
//! platforms also exhibit Weibull- and lognormal-distributed failure
//! inter-arrival times; this module adds those as [`ErrorLaw`]
//! variants, *mean-matched* to a nominal rate `λ` so that every law
//! with the same `λ` has the same expected inter-error time `1/λ` and
//! sweep axes stay comparable across laws.
//!
//! Sampling goes through the survival function: for `u` uniform in
//! `(0, 1]`, `X = S⁻¹(u)` has law `S`. For the exponential law this is
//! exactly `-ln(u)/λ` — bit-identical to the simulator's
//! `SimRng::exponential` when fed the same uniform draw, which is what
//! lets the scenario engine delegate the classical configuration to the
//! same code path without changing a single sampled bit.

use serde::{Deserialize, Serialize};

/// Distribution of silent-error inter-arrival times, mean-matched to a
/// nominal rate `λ` (every law has mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ErrorLaw {
    /// Exponential inter-error times (the paper's Poisson model).
    Exponential,
    /// Weibull inter-error times with the given shape `k`; the scale is
    /// chosen so the mean is `1/λ`. `k < 1` models infant mortality
    /// (decreasing hazard), `k > 1` wear-out (increasing hazard),
    /// `k = 1` degenerates to the exponential law.
    Weibull {
        /// Shape parameter `k > 0`.
        shape: f64,
    },
    /// Lognormal inter-error times with log-scale `s`; the log-mean is
    /// chosen so the mean is `1/λ`.
    LogNormal {
        /// Log-scale parameter `s > 0` (standard deviation of `ln X`).
        sigma: f64,
    },
}

impl ErrorLaw {
    /// Canonical lowercase name, as accepted by the CLI/serve `law`
    /// field.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorLaw::Exponential => "exponential",
            ErrorLaw::Weibull { .. } => "weibull",
            ErrorLaw::LogNormal { .. } => "lognormal",
        }
    }

    /// Whether the law is memoryless. Only the exponential law is, and
    /// memorylessness is exactly what the simulator's geometric fast
    /// path needs: it makes every attempt an i.i.d. Bernoulli trial, so
    /// attempt counts are geometric and run-length batching is valid.
    pub fn is_memoryless(&self) -> bool {
        matches!(self, ErrorLaw::Exponential)
    }

    /// Checks the shape parameter's domain. Returns the violated rule
    /// as a static string (mapped onto typed CLI/serve errors by the
    /// callers that own those error types).
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            ErrorLaw::Exponential => Ok(()),
            ErrorLaw::Weibull { shape } => {
                if shape.is_finite() && shape > 0.0 {
                    Ok(())
                } else {
                    Err("weibull shape must be finite and > 0")
                }
            }
            ErrorLaw::LogNormal { sigma } => {
                if sigma.is_finite() && sigma > 0.0 {
                    Ok(())
                } else {
                    Err("lognormal sigma must be finite and > 0")
                }
            }
        }
    }

    /// Mean inter-error time. All laws are mean-matched, so this is
    /// `1/λ` regardless of the variant.
    pub fn mean(&self, lambda: f64) -> f64 {
        1.0 / lambda
    }

    /// Variance of the inter-error time at nominal rate `lambda`.
    pub fn variance(&self, lambda: f64) -> f64 {
        let mean = 1.0 / lambda;
        match *self {
            ErrorLaw::Exponential => mean * mean,
            ErrorLaw::Weibull { shape } => {
                let eta = weibull_scale(shape, lambda);
                let g1 = ln_gamma(1.0 + 1.0 / shape).exp();
                let g2 = ln_gamma(1.0 + 2.0 / shape).exp();
                eta * eta * (g2 - g1 * g1)
            }
            ErrorLaw::LogNormal { sigma } => ((sigma * sigma).exp() - 1.0) * mean * mean,
        }
    }

    /// Survival function `S(x) = P(X > x)` at nominal rate `lambda`.
    ///
    /// Returns 1 for `x ≤ 0` and treats `lambda ≤ 0` as an error
    /// source that never fires (`S ≡ 1`), mirroring
    /// `SimRng::exponential`'s convention.
    pub fn survival(&self, x: f64, lambda: f64) -> f64 {
        if lambda <= 0.0 || x <= 0.0 {
            return 1.0;
        }
        match *self {
            ErrorLaw::Exponential => (-lambda * x).exp(),
            ErrorLaw::Weibull { shape } => {
                let eta = weibull_scale(shape, lambda);
                (-(x / eta).powf(shape)).exp()
            }
            ErrorLaw::LogNormal { sigma } => {
                let mu = lognormal_mu(sigma, lambda);
                norm_sf((x.ln() - mu) / sigma)
            }
        }
    }

    /// Inverse survival function: maps `u ∈ (0, 1]` to the time `x`
    /// with `S(x) = u`. Feeding a uniform `(0, 1]` draw produces an
    /// inter-error time with this law — the sampling primitive the
    /// scenario engine uses.
    ///
    /// For [`ErrorLaw::Exponential`] — and for `Weibull { shape: 1.0 }`,
    /// which is the same distribution — this is exactly `-ln(u)/λ`,
    /// bit-identical to `SimRng::exponential` on the same draw (pinned
    /// by test; common-random-number validation depends on it).
    pub fn inverse_survival(&self, u: f64, lambda: f64) -> f64 {
        match *self {
            ErrorLaw::Exponential => -u.ln() / lambda,
            ErrorLaw::Weibull { shape } => {
                if shape == 1.0 {
                    -u.ln() / lambda
                } else {
                    weibull_scale(shape, lambda) * (-u.ln()).powf(1.0 / shape)
                }
            }
            ErrorLaw::LogNormal { sigma } => {
                let mu = lognormal_mu(sigma, lambda);
                (mu + sigma * inv_norm_cdf(1.0 - u)).exp()
            }
        }
    }

    /// Quantile function: the time `x` with `P(X ≤ x) = q`, for
    /// `q ∈ [0, 1)`.
    pub fn quantile(&self, q: f64, lambda: f64) -> f64 {
        self.inverse_survival(1.0 - q, lambda)
    }
}

/// Weibull scale `η` such that the mean `η·Γ(1 + 1/k)` equals `1/λ`.
fn weibull_scale(shape: f64, lambda: f64) -> f64 {
    1.0 / (lambda * ln_gamma(1.0 + 1.0 / shape).exp())
}

/// Lognormal log-mean `μ` such that the mean `e^{μ + s²/2}` equals `1/λ`.
fn lognormal_mu(sigma: f64, lambda: f64) -> f64 {
    -lambda.ln() - 0.5 * sigma * sigma
}

/// `ln Γ(x)` for `x > 0` via the Lanczos approximation (g = 7, 9
/// coefficients): relative error below 1e-13 over the domain used here
/// (`x ≥ 1` — the mean-matching arguments `1 + 1/k` and `1 + 2/k`).
fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    // Reflection for x < 0.5 keeps the approximation in its sweet spot.
    if x < 0.5 {
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Standard normal survival function `Q(z) = P(Z > z)` via the
/// Abramowitz & Stegun 26.2.17 rational approximation (absolute error
/// below 7.5e-8) — accurate enough for the survival-probability guard
/// and moment checks, while quantile sampling goes through the sharper
/// [`inv_norm_cdf`].
fn norm_sf(z: f64) -> f64 {
    if z < 0.0 {
        return 1.0 - norm_sf(-z);
    }
    let t = 1.0 / (1.0 + 0.231_641_9 * z);
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    pdf * poly
}

/// Inverse standard normal CDF via Acklam's rational approximation
/// (relative error below 1.15e-9 over the full open unit interval),
/// with the usual three-region split. `p` must lie in `(0, 1)`;
/// endpoints map to `∓∞`.
fn inv_norm_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_5,
        -275.928_510_446_968_7,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_5,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inv_norm_cdf(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(0.5) = √π, Γ(1) = 1, Γ(5) = 24.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-12);
        // Recurrence Γ(x+1) = x·Γ(x) at a non-integer point.
        let x = 2.7;
        assert!((ln_gamma(x + 1.0) - (x.ln() + ln_gamma(x))).abs() < 1e-12);
    }

    #[test]
    fn inv_norm_cdf_matches_known_quantiles() {
        assert!(inv_norm_cdf(0.5).abs() < 1e-9);
        assert!((inv_norm_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-7);
        assert!((inv_norm_cdf(0.025) + 1.959_963_984_540_054).abs() < 1e-7);
        assert!((inv_norm_cdf(0.841_344_746_068_543) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn norm_sf_is_consistent_with_its_inverse() {
        for &p in &[0.9, 0.5, 0.1, 0.01, 1e-3] {
            let z = inv_norm_cdf(1.0 - p);
            assert!((norm_sf(z) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn exponential_inverse_survival_is_minus_ln_over_lambda() {
        let law = ErrorLaw::Exponential;
        for &u in &[1.0, 0.5, 1e-6] {
            let x = law.inverse_survival(u, 2.0e-4);
            assert_eq!(x.to_bits(), (-f64::ln(u) / 2.0e-4).to_bits());
        }
    }

    #[test]
    fn weibull_shape_one_is_bitwise_exponential() {
        let w = ErrorLaw::Weibull { shape: 1.0 };
        let e = ErrorLaw::Exponential;
        for &u in &[1.0, 0.731, 0.1, 3e-9] {
            assert_eq!(
                w.inverse_survival(u, 5e-5).to_bits(),
                e.inverse_survival(u, 5e-5).to_bits()
            );
        }
    }

    #[test]
    fn all_laws_are_mean_matched() {
        // Midpoint rule on X = S⁻¹(u): E[X] = ∫₀¹ S⁻¹(u) du ≈ 1/λ.
        let lambda = 1e-3;
        let n = 200_000;
        for law in [
            ErrorLaw::Exponential,
            ErrorLaw::Weibull { shape: 0.7 },
            ErrorLaw::Weibull { shape: 2.0 },
            ErrorLaw::LogNormal { sigma: 1.0 },
        ] {
            let mean: f64 = (0..n)
                .map(|i| law.inverse_survival((i as f64 + 0.5) / n as f64, lambda))
                .sum::<f64>()
                / n as f64;
            let rel = (mean - 1.0 / lambda).abs() * lambda;
            assert!(rel < 5e-3, "{}: mean {mean}, rel {rel}", law.name());
        }
    }

    #[test]
    fn survival_inverts_quantile() {
        let lambda = 2e-4;
        for law in [
            ErrorLaw::Exponential,
            ErrorLaw::Weibull { shape: 0.5 },
            ErrorLaw::Weibull { shape: 3.0 },
            ErrorLaw::LogNormal { sigma: 0.5 },
            ErrorLaw::LogNormal { sigma: 2.0 },
        ] {
            for &q in &[0.01, 0.5, 0.9, 0.99] {
                let x = law.quantile(q, lambda);
                let s = law.survival(x, lambda);
                assert!(
                    (s - (1.0 - q)).abs() < 1e-6,
                    "{} q={q}: S(x)={s}",
                    law.name()
                );
            }
        }
    }

    #[test]
    fn variance_matches_numeric_second_moment() {
        let lambda = 1e-2;
        let n = 400_000;
        for law in [
            ErrorLaw::Exponential,
            ErrorLaw::Weibull { shape: 1.5 },
            ErrorLaw::LogNormal { sigma: 0.8 },
        ] {
            let (mut m1, mut m2) = (0.0, 0.0);
            for i in 0..n {
                let x = law.inverse_survival((i as f64 + 0.5) / n as f64, lambda);
                m1 += x;
                m2 += x * x;
            }
            m1 /= n as f64;
            m2 /= n as f64;
            let var = m2 - m1 * m1;
            let rel = (var - law.variance(lambda)).abs() / law.variance(lambda);
            assert!(rel < 2e-2, "{}: var {var}, rel {rel}", law.name());
        }
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(ErrorLaw::Exponential.validate().is_ok());
        assert!(ErrorLaw::Weibull { shape: 0.7 }.validate().is_ok());
        assert!(ErrorLaw::Weibull { shape: 0.0 }.validate().is_err());
        assert!(ErrorLaw::Weibull { shape: f64::NAN }.validate().is_err());
        assert!(ErrorLaw::Weibull {
            shape: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(ErrorLaw::LogNormal { sigma: 1.0 }.validate().is_ok());
        assert!(ErrorLaw::LogNormal { sigma: -1.0 }.validate().is_err());
        assert!(ErrorLaw::LogNormal { sigma: f64::NAN }.validate().is_err());
    }

    #[test]
    fn only_exponential_is_memoryless() {
        assert!(ErrorLaw::Exponential.is_memoryless());
        assert!(!ErrorLaw::Weibull { shape: 1.0 }.is_memoryless());
        assert!(!ErrorLaw::LogNormal { sigma: 1.0 }.is_memoryless());
    }

    #[test]
    fn zero_rate_never_fires() {
        for law in [
            ErrorLaw::Exponential,
            ErrorLaw::Weibull { shape: 2.0 },
            ErrorLaw::LogNormal { sigma: 1.0 },
        ] {
            assert_eq!(law.survival(1e9, 0.0), 1.0);
            assert_eq!(law.survival(1e9, -1.0), 1.0);
        }
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(ErrorLaw::Exponential.name(), "exponential");
        assert_eq!(ErrorLaw::Weibull { shape: 2.0 }.name(), "weibull");
        assert_eq!(ErrorLaw::LogNormal { sigma: 1.0 }.name(), "lognormal");
        assert_eq!(ErrorLaw::Exponential.mean(1e-4), 1e4);
    }
}
