//! Derivative-free numeric optimization on the **exact** expectations.
//!
//! Theorem 1 works on first-order approximations; this module provides the
//! ground truth it is validated against: golden-section search on the exact
//! overheads of Propositions 2–5, plus a constrained minimizer that
//! reproduces the BiCrit structure (feasible interval + convex objective)
//! without any Taylor truncation. Also used for the mixed-error model
//! (§5), where no closed form exists.

use crate::mixed::MixedModel;
use crate::pattern::SilentModel;
use crate::speed::SpeedSet;

/// Default search interval for pattern sizes (work units).
pub const W_MIN: f64 = 1e-3;
/// Upper bound of the default search interval.
pub const W_MAX: f64 = 1e10;

const GOLDEN_ITERS: usize = 200;
const BISECT_ITERS: usize = 200;

/// Result of a constrained one-dimensional optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstrainedOptimum {
    /// Optimal pattern size.
    pub w: f64,
    /// Objective (energy overhead) at the optimum.
    pub objective: f64,
    /// Constraint value (time overhead) at the optimum; `≤ ρ`.
    pub constraint: f64,
}

/// Golden-section minimization of a unimodal `f` over `[lo, hi]`,
/// searching in log-space (pattern sizes span many decades).
///
/// Returns `(argmin, min)`.
pub fn golden_section_min(f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> (f64, f64) {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    // Overflowing expectations (e^{λW/σ} at astronomical W) can produce
    // ∞ or NaN (0·∞); both mean "hopeless", so map them to +∞ to keep the
    // bracketing comparisons sound.
    let f = move |w: f64| {
        let v = f(w);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };
    let inv_phi = 0.618_033_988_749_894_9_f64;
    let (mut a, mut b) = (lo.ln(), hi.ln());
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c.exp());
    let mut fd = f(d.exp());
    for _ in 0..GOLDEN_ITERS {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c.exp());
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d.exp());
        }
        if (b - a).abs() < 1e-14 {
            break;
        }
    }
    let x = 0.5 * (a + b);
    (x.exp(), f(x.exp()))
}

/// Bisects for the boundary of `{w : g(w) ≤ level}` on `[lo, hi]`, where
/// `g(lo) > level ≥ g(hi)` or vice versa (`g` monotone on the interval).
/// Returns the `w` where `g` crosses `level`.
fn bisect_crossing(g: impl Fn(f64) -> f64, level: f64, lo: f64, hi: f64) -> f64 {
    // NaN (0·∞ overflow) means "outside the feasible set".
    let g = move |w: f64| {
        let v = g(w);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };
    let (mut a, mut b) = (lo.ln(), hi.ln());
    let fa_in = g(a.exp()) <= level;
    for _ in 0..BISECT_ITERS {
        let mid = 0.5 * (a + b);
        let inside = g(mid.exp()) <= level;
        if inside == fa_in {
            a = mid;
        } else {
            b = mid;
        }
        if (b - a).abs() < 1e-15 {
            break;
        }
    }
    // Return the side that satisfies the constraint.
    let (ea, eb) = (a.exp(), b.exp());
    if g(ea) <= level {
        ea
    } else {
        eb
    }
}

/// Minimizes a unimodal `energy(w)` subject to `time(w) ≤ rho`, where
/// `time` is also unimodal on `[w_lo, w_hi]`. Returns `None` when even the
/// time minimum exceeds `rho` (infeasible).
///
/// This mirrors the Theorem 1 structure (feasible interval ∩ convex
/// objective ⇒ clamp) but on arbitrary exact overhead functions.
pub fn minimize_with_bound(
    energy: impl Fn(f64) -> f64,
    time: impl Fn(f64) -> f64,
    rho: f64,
    w_lo: f64,
    w_hi: f64,
) -> Option<ConstrainedOptimum> {
    let (wt, tmin) = golden_section_min(&time, w_lo, w_hi);
    if tmin > rho {
        return None;
    }
    // Feasible interval [w1, w2] around wt.
    let w1 = if time(w_lo) <= rho {
        w_lo
    } else {
        bisect_crossing(&time, rho, w_lo, wt)
    };
    let w2 = if time(w_hi) <= rho {
        w_hi
    } else {
        bisect_crossing(&time, rho, wt, w_hi)
    };
    let (we, _) = golden_section_min(&energy, w_lo, w_hi);
    let w = we.clamp(w1, w2);
    Some(ConstrainedOptimum {
        w,
        objective: energy(w),
        constraint: time(w),
    })
}

/// Exact constrained optimum for one speed pair under the silent-error
/// model (Propositions 2–3, no Taylor truncation).
pub fn exact_pair_optimum(
    m: &SilentModel,
    s1: f64,
    s2: f64,
    rho: f64,
) -> Option<ConstrainedOptimum> {
    minimize_with_bound(
        |w| m.energy_overhead(w, s1, s2),
        |w| m.time_overhead(w, s1, s2),
        rho,
        W_MIN,
        W_MAX,
    )
}

/// Exact constrained optimum for one speed pair under the mixed-error
/// model (Propositions 4–5 via the recursion; §5 has no closed form).
pub fn exact_pair_optimum_mixed(
    m: &MixedModel,
    s1: f64,
    s2: f64,
    rho: f64,
) -> Option<ConstrainedOptimum> {
    minimize_with_bound(
        |w| m.energy_overhead(w, s1, s2),
        |w| m.time_overhead(w, s1, s2),
        rho,
        W_MIN,
        W_MAX,
    )
}

/// Exact BiCrit solution over a speed set: enumerates all pairs with
/// [`exact_pair_optimum`]. Returns `(σ₁, σ₂, optimum)`.
pub fn exact_bicrit_solve(
    m: &SilentModel,
    speeds: &SpeedSet,
    rho: f64,
) -> Option<(f64, f64, ConstrainedOptimum)> {
    speeds
        .pairs()
        .filter_map(|(s1, s2)| exact_pair_optimum(m, s1, s2, rho).map(|o| (s1, s2, o)))
        .min_by(|a, b| {
            (a.2.objective, a.0, a.1)
                .partial_cmp(&(b.2.objective, b.0, b.1))
                .expect("finite objectives")
        })
}

/// Exact BiCrit solution for the mixed-error model over a speed set.
pub fn exact_bicrit_solve_mixed(
    m: &MixedModel,
    speeds: &SpeedSet,
    rho: f64,
) -> Option<(f64, f64, ConstrainedOptimum)> {
    speeds
        .pairs()
        .filter_map(|(s1, s2)| exact_pair_optimum_mixed(m, s1, s2, rho).map(|o| (s1, s2, o)))
        .min_by(|a, b| {
            (a.2.objective, a.0, a.1)
                .partial_cmp(&(b.2.objective, b.0, b.1))
                .expect("finite objectives")
        })
}

/// Exact time-only optimum for one speed pair of the mixed model:
/// `argmin_W T(W,σ₁,σ₂)/W`. Used to validate Theorem 2 numerically.
pub fn exact_time_minimizer_mixed(m: &MixedModel, s1: f64, s2: f64) -> (f64, f64) {
    golden_section_min(|w| m.time_overhead(w, s1, s2), W_MIN, W_MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicrit::BiCritSolver;
    use crate::cost::ResilienceCosts;
    use crate::error_model::ErrorRates;
    use crate::power::PowerModel;
    use crate::theorem2;

    fn hera_xscale() -> SilentModel {
        SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let (x, fx) = golden_section_min(|x| (x - 5.0) * (x - 5.0) + 1.0, 0.1, 100.0);
        assert!((x - 5.0).abs() < 1e-6);
        assert!((fx - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_section_handles_boundary_minimum() {
        // Decreasing function: minimum at the right edge.
        let (x, _) = golden_section_min(|x| 1.0 / x, 1.0, 1000.0);
        assert!(x > 999.0);
    }

    #[test]
    fn exact_optimum_close_to_theorem1() {
        // λW is tiny at the optimum, so the exact optimum must be within a
        // fraction of a percent of the first-order Wopt.
        let m = hera_xscale();
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        let solver = BiCritSolver::new(m, speeds.clone());
        for rho in [1.775, 3.0, 8.0] {
            let fo = solver.solve(rho).unwrap();
            let (s1, s2, ex) = exact_bicrit_solve(&m, &speeds, rho).unwrap();
            assert_eq!((s1, s2), (fo.sigma1, fo.sigma2), "ρ={rho}: speed pair");
            // The optimum sits in a flat valley: the first-order Wopt can
            // differ by O(λW) ≈ 1% while the objective differs by far less.
            assert!(
                (ex.w - fo.w_opt).abs() / fo.w_opt < 3e-2,
                "ρ={rho}: exact W {} vs Theorem 1 {}",
                ex.w,
                fo.w_opt
            );
            assert!(
                (ex.objective - fo.energy_overhead).abs() / ex.objective < 1e-2,
                "ρ={rho}: exact E/W {} vs first-order {}",
                ex.objective,
                fo.energy_overhead
            );
        }
    }

    #[test]
    fn constrained_optimum_respects_bound() {
        let m = hera_xscale();
        for rho in [1.775, 2.5, 8.0] {
            for (s1, s2) in [(0.4, 0.4), (0.6, 0.8), (1.0, 0.4)] {
                if let Some(o) = exact_pair_optimum(&m, s1, s2, rho) {
                    assert!(o.constraint <= rho * (1.0 + 1e-9));
                    assert!(o.w > 0.0);
                }
            }
        }
    }

    #[test]
    fn infeasible_bound_returns_none() {
        let m = hera_xscale();
        // σ1 = 0.15 cannot achieve ρ = 3 even exactly.
        assert!(exact_pair_optimum(&m, 0.15, 0.4, 3.0).is_none());
    }

    #[test]
    fn theorem2_validated_against_exact_mixed_minimizer() {
        // Fail-stop only, σ2 = 2σ1: the exact time-optimal W must match
        // (12C/λ²)^{1/3}σ within the approximation error.
        let lambda = 1e-5;
        let mm = MixedModel::new(
            ErrorRates::fail_stop_only(lambda).unwrap(),
            ResilienceCosts::new(300.0, 0.0, 300.0).unwrap(),
            PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
        );
        let sigma = 0.5;
        let (w_num, _) = exact_time_minimizer_mixed(&mm, sigma, 2.0 * sigma);
        let w_thm = theorem2::optimal_work(300.0, lambda, sigma);
        assert!(
            (w_num - w_thm).abs() / w_thm < 0.05,
            "numeric {w_num} vs Theorem 2 {w_thm}"
        );
    }

    #[test]
    fn mixed_exact_bicrit_prefers_feasible_pairs() {
        let mm = MixedModel::new(
            ErrorRates::from_total(1e-5, 0.5).unwrap(),
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        );
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        let sol = exact_bicrit_solve_mixed(&mm, &speeds, 3.0);
        let (s1, _s2, o) = sol.expect("rho = 3 feasible for mixed model");
        assert!(s1 >= 0.4, "σ1 = 0.15 cannot meet ρ = 3");
        assert!(o.constraint <= 3.0 + 1e-9);
    }

    #[test]
    fn minimize_with_bound_clamps_to_feasible_interval() {
        // Objective pushes W high; constraint caps it.
        let energy = |w: f64| 1.0 / w; // decreasing: wants W = ∞
        let time = |w: f64| 1.0 + 0.001 * w + 10.0 / w; // convex
        let o = minimize_with_bound(energy, time, 2.0, 1.0, 1e6).unwrap();
        // Constraint boundary: 0.001w + 10/w = 1 → w ≈ 989.89.
        assert!((o.constraint - 2.0).abs() < 1e-6);
        assert!((o.w - 989.898).abs() < 0.5, "w = {}", o.w);
    }
}
