//! Continuous-speed relaxation of BiCrit.
//!
//! The paper works with a *discrete* speed set (DVFS steps). Relaxing the
//! speeds to a continuous interval `[σ_min, σ_max]` answers two practical
//! questions: how much energy do the discrete steps leave on the table,
//! and where would an ideal processor operate? The relaxation is solved
//! by nested golden-section search — the energy overhead at the optimal
//! `W` is well-behaved (unimodal in each speed over the ranges of
//! interest), and every candidate is verified against the performance
//! bound, so the result is a certified feasible point (and, empirically,
//! matches the discrete optimum as the grid refines; see the tests).

use crate::approx::FirstOrder;
use crate::pattern::SilentModel;
use crate::theorem1;
use serde::{Deserialize, Serialize};

/// Solution of the continuous relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContinuousSolution {
    /// Optimal first-execution speed.
    pub sigma1: f64,
    /// Optimal re-execution speed.
    pub sigma2: f64,
    /// Optimal pattern size (Theorem 1 at the optimal pair).
    pub w_opt: f64,
    /// Energy overhead at the optimum.
    pub energy_overhead: f64,
    /// Time overhead at the optimum (≤ ρ).
    pub time_overhead: f64,
}

/// Energy overhead of the best pattern for a pair, or `+∞` if infeasible.
fn pair_objective(m: &SilentModel, s1: f64, s2: f64, rho: f64) -> f64 {
    match theorem1::optimal_pattern(m, s1, s2, rho) {
        Ok(p) => FirstOrder::energy_overhead(m, p.w_opt, s1, s2),
        Err(_) => f64::INFINITY,
    }
}

/// Solves the continuous relaxation over `σ₁, σ₂ ∈ [sigma_min, sigma_max]`.
///
/// Pattern search: a coarse grid seeds the basin, then the grid window
/// shrinks around the incumbent (robust to the infeasibility plateau that
/// breaks line-search methods at tight bounds). Resolution after the
/// shrink rounds is ~1e-5 of the speed range. Returns `None` when the
/// bound is infeasible even at `σ_max`.
pub fn solve(
    m: &SilentModel,
    sigma_min: f64,
    sigma_max: f64,
    rho: f64,
) -> Option<ContinuousSolution> {
    assert!(
        sigma_min > 0.0 && sigma_max > sigma_min,
        "need 0 < sigma_min < sigma_max"
    );
    // Feasibility requires roughly 1/σ1 < ρ; bail early if hopeless.
    if theorem1::rho_min(m, sigma_max, sigma_max) > rho {
        return None;
    }
    let grid = 25usize;
    // Seed pass: coarse grid over the full square; keep several seeds
    // spread across the square (the feasibility boundary creates several
    // local basins at tight bounds, so single-start refinement can miss
    // the global optimum).
    let range = sigma_max - sigma_min;
    let coarse_step = range / (grid - 1) as f64;
    let mut cells: Vec<(f64, f64, f64)> = vec![]; // (objective, s1, s2)
    for i in 0..grid {
        for j in 0..grid {
            let s1 = sigma_min + coarse_step * i as f64;
            let s2 = sigma_min + coarse_step * j as f64;
            let e = pair_objective(m, s1, s2, rho);
            if e.is_finite() {
                cells.push((e, s1, s2));
            }
        }
    }
    if cells.is_empty() {
        return None;
    }
    cells.sort_by(|a, b| a.partial_cmp(b).expect("finite objectives"));
    // Seeds: the best cell plus the best cells at least 2 coarse steps away
    // from every already-chosen seed.
    let mut seeds: Vec<(f64, f64)> = vec![];
    for &(_, s1, s2) in &cells {
        if seeds.len() >= 6 {
            break;
        }
        if seeds
            .iter()
            .all(|&(a, b)| (a - s1).abs() > 2.0 * coarse_step || (b - s2).abs() > 2.0 * coarse_step)
        {
            seeds.push((s1, s2));
        }
    }

    // Refinement pass per seed: shrinking grid window.
    let mut best = (f64::INFINITY, seeds[0].0, seeds[0].1);
    for &(seed1, seed2) in &seeds {
        let mut center = (seed1, seed2);
        let mut half = 2.0 * coarse_step;
        let mut local = (pair_objective(m, seed1, seed2, rho), seed1, seed2);
        for _round in 0..8 {
            let lo1 = (center.0 - half).max(sigma_min);
            let hi1 = (center.0 + half).min(sigma_max);
            let lo2 = (center.1 - half).max(sigma_min);
            let hi2 = (center.1 + half).min(sigma_max);
            let step1 = (hi1 - lo1) / (grid - 1) as f64;
            let step2 = (hi2 - lo2) / (grid - 1) as f64;
            for i in 0..grid {
                for j in 0..grid {
                    let s1 = lo1 + step1 * i as f64;
                    let s2 = lo2 + step2 * j as f64;
                    let e = pair_objective(m, s1, s2, rho);
                    if e < local.0 {
                        local = (e, s1, s2);
                    }
                }
            }
            center = (local.1, local.2);
            half /= 3.0;
            if half < 1e-6 {
                break;
            }
        }
        if local.0 < best.0 {
            best = local;
        }
    }
    if !best.0.is_finite() {
        return None;
    }
    let (s1, s2) = (best.1, best.2);
    let pat = theorem1::optimal_pattern(m, s1, s2, rho).ok()?;
    Some(ContinuousSolution {
        sigma1: s1,
        sigma2: s2,
        w_opt: pat.w_opt,
        energy_overhead: FirstOrder::energy_overhead(m, pat.w_opt, s1, s2),
        time_overhead: FirstOrder::time_overhead(m, pat.w_opt, s1, s2),
    })
}

/// Energy left on the table by a discrete speed set relative to the
/// continuous relaxation over the same range, in `[0, 1)`. `None` when
/// either problem is infeasible.
pub fn discretization_gap(
    m: &SilentModel,
    speeds: &crate::speed::SpeedSet,
    rho: f64,
) -> Option<f64> {
    let discrete = crate::bicrit::BiCritSolver::new(*m, speeds.clone()).solve(rho)?;
    let cont = solve(m, speeds.min(), speeds.max(), rho)?;
    Some(1.0 - cont.energy_overhead / discrete.energy_overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicrit::BiCritSolver;
    use crate::cost::ResilienceCosts;
    use crate::power::PowerModel;
    use crate::speed::SpeedSet;

    fn hera_xscale() -> SilentModel {
        SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn continuous_never_worse_than_discrete() {
        let m = hera_xscale();
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        for rho in [1.4, 1.775, 3.0, 8.0] {
            let discrete = BiCritSolver::new(m, speeds.clone()).solve(rho).unwrap();
            let cont = solve(&m, 0.15, 1.0, rho).unwrap();
            assert!(
                cont.energy_overhead <= discrete.energy_overhead * (1.0 + 1e-9),
                "rho={rho}: continuous {} vs discrete {}",
                cont.energy_overhead,
                discrete.energy_overhead
            );
            assert!(cont.time_overhead <= rho * (1.0 + 1e-9));
        }
    }

    #[test]
    fn dense_grid_converges_to_continuous() {
        let m = hera_xscale();
        let rho = 3.0;
        let cont = solve(&m, 0.15, 1.0, rho).unwrap();
        // 171-point uniform grid over [0.15, 1].
        let dense: Vec<f64> = (0..171).map(|i| 0.15 + 0.005 * i as f64).collect();
        let discrete = BiCritSolver::new(m, SpeedSet::new(dense).unwrap())
            .solve(rho)
            .unwrap();
        assert!(
            (discrete.energy_overhead - cont.energy_overhead).abs() / cont.energy_overhead < 3e-3,
            "dense grid {} vs continuous {}",
            discrete.energy_overhead,
            cont.energy_overhead
        );
        assert!((discrete.sigma1 - cont.sigma1).abs() < 0.02);
    }

    #[test]
    fn continuous_optimum_is_interior_for_loose_bounds() {
        // With ρ = 8 the energy-optimal speed on Hera/XScale is strictly
        // between the extremes (σ ≈ 0.34: the Pidle/κ balance point).
        let m = hera_xscale();
        let cont = solve(&m, 0.15, 1.0, 8.0).unwrap();
        assert!(
            cont.sigma1 > 0.2 && cont.sigma1 < 0.6,
            "σ1 = {}",
            cont.sigma1
        );
        assert!(
            cont.sigma2 > 0.2 && cont.sigma2 < 0.6,
            "σ2 = {}",
            cont.sigma2
        );
    }

    #[test]
    fn infeasible_bound_returns_none() {
        let m = hera_xscale();
        assert!(solve(&m, 0.15, 1.0, 1.0).is_none());
    }

    #[test]
    fn discretization_gap_is_small_but_positive() {
        let m = hera_xscale();
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        let gap = discretization_gap(&m, &speeds, 3.0).unwrap();
        assert!((0.0..0.1).contains(&gap), "gap = {gap}");
    }

    #[test]
    #[should_panic(expected = "sigma_min")]
    fn invalid_range_panics() {
        let m = hera_xscale();
        let _ = solve(&m, 1.0, 0.5, 3.0);
    }
}
