//! Input validation shared across the crate.

use std::fmt;

/// Errors produced when constructing model parameters from invalid inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter that must be finite and non-negative was not.
    NonNegative {
        /// Human-readable parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A parameter that must be finite and strictly positive was not.
    Positive {
        /// Human-readable parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A speed set was empty after validation.
    EmptySpeedSet,
    /// Error-rate split fractions must satisfy `0 ≤ f ≤ 1`.
    InvalidFraction {
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonNegative { name, value } => {
                write!(f, "parameter `{name}` must be finite and >= 0, got {value}")
            }
            ModelError::Positive { name, value } => {
                write!(f, "parameter `{name}` must be finite and > 0, got {value}")
            }
            ModelError::EmptySpeedSet => write!(f, "speed set must contain at least one speed"),
            ModelError::InvalidFraction { value } => {
                write!(f, "fraction must lie in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Checks that `value` is finite and non-negative.
pub(crate) fn non_negative(name: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(ModelError::NonNegative { name, value })
    }
}

/// Checks that `value` is finite and strictly positive.
pub(crate) fn positive(name: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(ModelError::Positive { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_negative_accepts_zero() {
        assert_eq!(non_negative("x", 0.0), Ok(0.0));
    }

    #[test]
    fn non_negative_rejects_negative_and_nan() {
        assert!(non_negative("x", -1.0).is_err());
        assert!(non_negative("x", f64::NAN).is_err());
        assert!(non_negative("x", f64::INFINITY).is_err());
    }

    #[test]
    fn positive_rejects_zero() {
        assert!(positive("x", 0.0).is_err());
        assert_eq!(positive("x", 1.5), Ok(1.5));
    }

    #[test]
    fn display_messages_mention_parameter() {
        let err = positive("lambda", -3.0).unwrap_err();
        assert!(err.to_string().contains("lambda"));
        assert!(ModelError::EmptySpeedSet.to_string().contains("speed set"));
        let frac = ModelError::InvalidFraction { value: 2.0 };
        assert!(frac.to_string().contains("[0, 1]"));
    }
}
