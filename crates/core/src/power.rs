//! Platform power model (paper §2.1).
//!
//! * `Pcpu(σ) = κσ³` — dynamic power of computing at speed `σ`
//!   (cube law, Yao/Demers/Shenker \[22\], Bansal/Kimbrel/Pruhs \[3\]);
//! * `Pidle` — static power, paid whenever the platform is on;
//! * `Pio` — dynamic power of I/O transfers, paid during checkpoints and
//!   recoveries on top of `Pidle`.

use crate::validate::{non_negative, ModelError};
use serde::{Deserialize, Serialize};

/// Power parameters of a platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Cube-law coefficient `κ` of the dynamic CPU power `κσ³` (mW).
    pub kappa: f64,
    /// Static (idle) power `Pidle` (mW).
    pub p_idle: f64,
    /// Dynamic I/O power `Pio` (mW).
    pub p_io: f64,
}

impl PowerModel {
    /// Creates a validated power model.
    ///
    /// # Errors
    /// [`ModelError::NonNegative`] if any parameter is negative or not finite.
    pub fn new(kappa: f64, p_idle: f64, p_io: f64) -> Result<Self, ModelError> {
        Ok(PowerModel {
            kappa: non_negative("kappa", kappa)?,
            p_idle: non_negative("p_idle", p_idle)?,
            p_io: non_negative("p_io", p_io)?,
        })
    }

    /// Creates a power model using the paper's default I/O power:
    /// `Pio = κ·σ_min³`, the dynamic power of the CPU at the slowest speed
    /// (paper §4.1: "the default value of Pio is set to be equivalent to the
    /// power used when the CPU runs at the lowest speed").
    pub fn with_default_io(kappa: f64, p_idle: f64, sigma_min: f64) -> Result<Self, ModelError> {
        let s = non_negative("sigma_min", sigma_min)?;
        PowerModel::new(kappa, p_idle, kappa * s * s * s)
    }

    /// Dynamic CPU power `Pcpu(σ) = κσ³` (mW).
    #[inline]
    pub fn cpu_power(&self, sigma: f64) -> f64 {
        self.kappa * sigma * sigma * sigma
    }

    /// Total power while computing at speed `σ`: `κσ³ + Pidle` (mW).
    #[inline]
    pub fn compute_power(&self, sigma: f64) -> f64 {
        self.cpu_power(sigma) + self.p_idle
    }

    /// Total power during checkpoint/recovery: `Pio + Pidle` (mW).
    #[inline]
    pub fn io_power(&self) -> f64 {
        self.p_io + self.p_idle
    }

    /// Energy of executing `w` units of work at speed `σ` (error-free):
    /// `(w/σ)·(κσ³ + Pidle)` (mJ).
    #[inline]
    pub fn compute_energy(&self, w: f64, sigma: f64) -> f64 {
        w / sigma * self.compute_power(sigma)
    }

    /// Energy of an I/O operation lasting `t` seconds: `t·(Pio + Pidle)` (mJ).
    #[inline]
    pub fn io_energy(&self, t: f64) -> f64 {
        t * self.io_power()
    }

    /// Returns a copy with a different idle power (sweep helper).
    #[must_use]
    pub fn with_p_idle(mut self, p_idle: f64) -> Self {
        self.p_idle = p_idle;
        self
    }

    /// Returns a copy with a different I/O power (sweep helper).
    #[must_use]
    pub fn with_p_io(mut self, p_io: f64) -> Self {
        self.p_io = p_io;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xscale() -> PowerModel {
        // Intel XScale: P(σ) = 1550σ³ + 60 (paper Table 2).
        PowerModel::new(1550.0, 60.0, 1550.0 * 0.15f64.powi(3)).unwrap()
    }

    #[test]
    fn cube_law() {
        let p = xscale();
        assert!((p.cpu_power(1.0) - 1550.0).abs() < 1e-12);
        assert!((p.cpu_power(0.5) - 1550.0 / 8.0).abs() < 1e-12);
        assert!((p.compute_power(1.0) - 1610.0).abs() < 1e-12);
    }

    #[test]
    fn default_io_is_dynamic_power_at_min_speed() {
        let p = PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap();
        assert!((p.p_io - 5.23125).abs() < 1e-9);
        assert!((p.io_power() - 65.23125).abs() < 1e-9);
    }

    #[test]
    fn compute_energy_scales_as_sigma_squared_without_idle() {
        // With Pidle = 0: E = (w/σ)·κσ³ = wκσ², the classical DVFS result.
        let p = PowerModel::new(100.0, 0.0, 0.0).unwrap();
        let w = 10.0;
        let e_half = p.compute_energy(w, 0.5);
        let e_full = p.compute_energy(w, 1.0);
        assert!((e_full / e_half - 4.0).abs() < 1e-12);
    }

    #[test]
    fn io_energy_uses_io_power() {
        let p = xscale();
        assert!((p.io_energy(2.0) - 2.0 * p.io_power()).abs() < 1e-12);
    }

    #[test]
    fn rejects_negative_parameters() {
        assert!(PowerModel::new(-1.0, 0.0, 0.0).is_err());
        assert!(PowerModel::new(1.0, -0.1, 0.0).is_err());
        assert!(PowerModel::new(1.0, 0.0, f64::NAN).is_err());
    }

    #[test]
    fn sweep_helpers_replace_fields() {
        let p = xscale().with_p_idle(500.0).with_p_io(123.0);
        assert_eq!(p.p_idle, 500.0);
        assert_eq!(p.p_io, 123.0);
        assert_eq!(p.kappa, 1550.0);
    }

    #[test]
    fn zero_power_model_is_valid() {
        let p = PowerModel::new(0.0, 0.0, 0.0).unwrap();
        assert_eq!(p.compute_energy(100.0, 0.5), 0.0);
        assert_eq!(p.io_energy(10.0), 0.0);
    }
}
