//! Classical checkpointing-period baselines (Young \[23\], Daly \[12\], and the
//! silent-error variant of Hérault & Robert \[14\]) referenced in §1.
//!
//! For **fail-stop** errors at rate `λ` with checkpoint cost `C`, the
//! time-optimal period is `T = √(2C/λ)`: errors are detected immediately
//! and lose half the period on average. For **silent** errors with verified
//! checkpoints the error is always detected at the end of the period, the
//! whole period is lost, and the factor 2 disappears: `T = √((V+C)/λ)`.
//!
//! Speed-aware variants express the period as an amount of *work* `W`
//! executed at speed `σ` (so the wall-clock period is `W/σ`).

/// Young/Daly optimal checkpointing *period* (wall-clock seconds) for
/// fail-stop errors: `T = √(2C/λ)`.
#[inline]
pub fn young_daly_period(c: f64, lambda: f64) -> f64 {
    (2.0 * c / lambda).sqrt()
}

/// Optimal checkpointing *period* (wall-clock seconds) for silent errors
/// with verified checkpoints: `T = √((V + C)/λ)`.
#[inline]
pub fn silent_period(c: f64, v: f64, lambda: f64) -> f64 {
    ((v + c) / lambda).sqrt()
}

/// Young/Daly optimal pattern *size* (work units) when executing at speed
/// `σ` under fail-stop errors: minimizing
/// `T/W = 1/σ + C/W + λW/(2σ²) + λR/σ` gives `W = σ·√(2C/λ)`.
#[inline]
pub fn young_daly_work(c: f64, lambda: f64, sigma: f64) -> f64 {
    sigma * (2.0 * c / lambda).sqrt()
}

/// Optimal pattern *size* (work units) at speed `σ` under silent errors
/// with verified checkpoints: minimizing the first-order
/// `T/W = 1/σ + (C + V/σ)/W + λW/σ² + …` gives `W = σ·√((C + V/σ)/λ)`.
#[inline]
pub fn silent_work(c: f64, v: f64, lambda: f64, sigma: f64) -> f64 {
    sigma * ((c + v / sigma) / lambda).sqrt()
}

/// First-order time overhead of the fail-stop single-speed model at pattern
/// size `w`: `1/σ + C/W + λW/(2σ²) + λR/σ`.
#[inline]
pub fn fail_stop_time_overhead(c: f64, r: f64, lambda: f64, w: f64, sigma: f64) -> f64 {
    1.0 / sigma + c / w + lambda * w / (2.0 * sigma * sigma) + lambda * r / sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::FirstOrder;
    use crate::cost::ResilienceCosts;
    use crate::pattern::SilentModel;
    use crate::power::PowerModel;

    #[test]
    fn young_daly_classic_values() {
        // C = 300 s, MTBF = 1 day: T = √(2·300·86400) ≈ 7200 s.
        let t = young_daly_period(300.0, 1.0 / 86_400.0);
        assert!((t - 7200.0).abs() < 1.0);
    }

    #[test]
    fn silent_period_lacks_factor_two() {
        // With V = 0, the silent period is the fail-stop period / √2.
        let lambda = 1e-5;
        let c = 600.0;
        let ratio = young_daly_period(c, lambda) / silent_period(c, 0.0, lambda);
        assert!((ratio - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn work_scales_linearly_with_speed() {
        let lambda = 1e-6;
        let w1 = young_daly_work(300.0, lambda, 0.5);
        let w2 = young_daly_work(300.0, lambda, 1.0);
        assert!((w2 / w1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn silent_work_matches_first_order_time_minimizer() {
        // silent_work must equal the minimizer of Equation (2) on σ1=σ2=σ.
        let m = SilentModel::new(
            7.78e-6,
            ResilienceCosts::symmetric(439.0, 9.1),
            PowerModel::new(5756.0, 4.4, 100.0).unwrap(),
        )
        .unwrap();
        for &s in &[0.45, 0.8, 1.0] {
            let co = FirstOrder::time_coefficients(&m, s, s);
            let w_fo = co.minimizer();
            let w_cf = silent_work(m.costs.checkpoint, m.costs.verification, m.lambda, s);
            assert!((w_fo - w_cf).abs() < 1e-9 * w_fo, "σ={s}: {w_fo} vs {w_cf}");
        }
    }

    #[test]
    fn fail_stop_overhead_minimized_at_young_daly_work() {
        let (c, r, lambda, sigma) = (300.0, 300.0, 1e-6, 0.8);
        let w = young_daly_work(c, lambda, sigma);
        let f = |w| fail_stop_time_overhead(c, r, lambda, w, sigma);
        assert!(f(w) <= f(w * 0.99));
        assert!(f(w) <= f(w * 1.01));
    }

    #[test]
    fn periods_scale_as_inverse_sqrt_lambda() {
        let c = 300.0;
        let t1 = young_daly_period(c, 1e-6);
        let t2 = young_daly_period(c, 4e-6);
        assert!((t1 / t2 - 2.0).abs() < 1e-12);
        let s1 = silent_period(c, 10.0, 1e-6);
        let s2 = silent_period(c, 10.0, 4e-6);
        assert!((s1 / s2 - 2.0).abs() < 1e-12);
    }
}
