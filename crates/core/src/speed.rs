//! Discrete DVFS speed sets.
//!
//! The platform can be operated at any speed from a finite set
//! `S = {σ₁, …, σ_K}` (paper §2.1). Speeds are normalized so that the
//! fastest speed is `1`; they are *aggregate* platform speeds, i.e. the
//! combined speed of all processors.

use crate::validate::{positive, ModelError};
use serde::{Deserialize, Serialize};

/// A single normalized DVFS speed.
///
/// Thin validated wrapper around `f64`: finite and strictly positive.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Speed(f64);

impl Speed {
    /// Creates a validated speed.
    ///
    /// # Errors
    /// Returns [`ModelError::Positive`] if `value` is not finite and `> 0`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        positive("speed", value).map(Speed)
    }

    /// Raw value of the speed.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl From<Speed> for f64 {
    fn from(s: Speed) -> f64 {
        s.0
    }
}

impl std::fmt::Display for Speed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A validated, ascending, duplicate-free set of available speeds.
///
/// ```
/// use rexec_core::SpeedSet;
/// let s = SpeedSet::new(vec![1.0, 0.4, 0.4, 0.15]).unwrap();
/// assert_eq!(s.values(), &[0.15, 0.4, 1.0]);
/// assert_eq!(s.min(), 0.15);
/// assert_eq!(s.max(), 1.0);
/// assert_eq!(s.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedSet {
    speeds: Vec<f64>,
}

impl SpeedSet {
    /// Builds a speed set from raw values: validates, sorts ascending and
    /// removes exact duplicates.
    ///
    /// # Errors
    /// [`ModelError::Positive`] if any speed is invalid,
    /// [`ModelError::EmptySpeedSet`] if no speed remains.
    pub fn new(values: Vec<f64>) -> Result<Self, ModelError> {
        let mut speeds = Vec::with_capacity(values.len());
        for v in values {
            speeds.push(positive("speed", v)?);
        }
        speeds.sort_by(|a, b| a.partial_cmp(b).expect("validated speeds are comparable"));
        speeds.dedup();
        if speeds.is_empty() {
            return Err(ModelError::EmptySpeedSet);
        }
        Ok(SpeedSet { speeds })
    }

    /// Single-speed set (useful for one-speed baselines).
    pub fn singleton(value: f64) -> Result<Self, ModelError> {
        SpeedSet::new(vec![value])
    }

    /// Sorted raw speed values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.speeds
    }

    /// Number of distinct speeds `K`.
    #[inline]
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.speeds.is_empty()
    }

    /// Slowest available speed `σ_min`.
    #[inline]
    pub fn min(&self) -> f64 {
        self.speeds[0]
    }

    /// Fastest available speed `σ_max`.
    #[inline]
    pub fn max(&self) -> f64 {
        *self.speeds.last().expect("non-empty by construction")
    }

    /// Iterator over speeds, ascending.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.speeds.iter().copied()
    }

    /// Iterator over all `K²` ordered speed pairs `(σᵢ, σⱼ)`:
    /// first-execution speed × re-execution speed.
    pub fn pairs(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.speeds
            .iter()
            .flat_map(move |&s1| self.speeds.iter().map(move |&s2| (s1, s2)))
    }

    /// Iterator over the `K` diagonal pairs `(σ, σ)` (one-speed executions).
    pub fn diagonal_pairs(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.speeds.iter().map(|&s| (s, s))
    }

    /// Returns the closest available speed to `target` (ties go to the
    /// slower speed).
    pub fn closest(&self, target: f64) -> f64 {
        let mut best = self.speeds[0];
        let mut best_d = (best - target).abs();
        for &s in &self.speeds[1..] {
            let d = (s - target).abs();
            if d < best_d {
                best = s;
                best_d = d;
            }
        }
        best
    }

    /// Whether `speed` is a member of the set (exact comparison).
    pub fn contains(&self, speed: f64) -> bool {
        self.speeds.contains(&speed)
    }
}

impl<'a> IntoIterator for &'a SpeedSet {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.speeds.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_rejects_invalid() {
        assert!(Speed::new(0.0).is_err());
        assert!(Speed::new(-0.4).is_err());
        assert!(Speed::new(f64::NAN).is_err());
        assert_eq!(Speed::new(0.4).unwrap().value(), 0.4);
    }

    #[test]
    fn speed_display_and_into() {
        let s = Speed::new(0.8).unwrap();
        assert_eq!(s.to_string(), "0.8");
        let raw: f64 = s.into();
        assert_eq!(raw, 0.8);
    }

    #[test]
    fn set_sorts_and_dedups() {
        let s = SpeedSet::new(vec![0.8, 0.15, 0.8, 1.0, 0.4, 0.6]).unwrap();
        assert_eq!(s.values(), &[0.15, 0.4, 0.6, 0.8, 1.0]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn set_rejects_empty_and_bad() {
        assert!(SpeedSet::new(vec![]).is_err());
        assert!(SpeedSet::new(vec![0.5, -1.0]).is_err());
    }

    #[test]
    fn pairs_enumerates_k_squared() {
        let s = SpeedSet::new(vec![0.5, 1.0]).unwrap();
        let pairs: Vec<_> = s.pairs().collect();
        assert_eq!(pairs, vec![(0.5, 0.5), (0.5, 1.0), (1.0, 0.5), (1.0, 1.0)]);
    }

    #[test]
    fn diagonal_pairs_enumerates_k() {
        let s = SpeedSet::new(vec![0.5, 1.0]).unwrap();
        let pairs: Vec<_> = s.diagonal_pairs().collect();
        assert_eq!(pairs, vec![(0.5, 0.5), (1.0, 1.0)]);
    }

    #[test]
    fn closest_picks_nearest() {
        let s = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        assert_eq!(s.closest(0.55), 0.6);
        assert_eq!(s.closest(0.05), 0.15);
        assert_eq!(s.closest(2.0), 1.0);
    }

    #[test]
    fn contains_and_minmax() {
        let s = SpeedSet::new(vec![0.45, 0.6, 0.8, 0.9, 1.0]).unwrap();
        assert!(s.contains(0.9));
        assert!(!s.contains(0.5));
        assert_eq!(s.min(), 0.45);
        assert_eq!(s.max(), 1.0);
        assert!(!s.is_empty());
    }

    #[test]
    fn singleton_works() {
        let s = SpeedSet::singleton(0.7).unwrap();
        assert_eq!(s.values(), &[0.7]);
    }

    #[test]
    fn iterators_agree() {
        let s = SpeedSet::new(vec![0.2, 0.9]).unwrap();
        let a: Vec<_> = s.iter().collect();
        let b: Vec<_> = (&s).into_iter().collect();
        assert_eq!(a, b);
    }
}
