//! Theorem 1 — closed-form optimal pattern size for **BiCrit**.
//!
//! For a fixed speed pair `(σ₁, σ₂)` and performance bound `ρ`, the
//! first-order constraint `T(W)/W ≤ ρ` is the quadratic inequality
//! `aW² + bW + c ≤ 0` with
//!
//! ```text
//! a = λ/(σ₁σ₂),   b = 1/σ₁ + λ(R/σ₁ + V/(σ₁σ₂)) − ρ,   c = C + V/σ₁
//! ```
//!
//! * if `b > −2√(ac)` there is no positive solution → **infeasible**;
//! * otherwise the feasible sizes form `[W₁, W₂]` and, the energy overhead
//!   being convex in `W` with unconstrained minimizer `Wₑ` (Equation 5),
//!   the optimum is the clamp `Wopt = min(max(W₁, Wₑ), W₂)` (Equation 4).
//!
//! The smallest bound for which the pair is feasible is (Equation 6)
//!
//! ```text
//! ρᵢⱼ = 1/σᵢ + 2√((C + V/σᵢ)·λ/(σᵢσⱼ)) + λ(R/σᵢ + V/(σᵢσⱼ))
//! ```

use crate::approx::{FirstOrder, OverheadCoefficients};
use crate::pattern::SilentModel;
use crate::quadratic::{solve_quadratic, Roots};
use serde::{Deserialize, Serialize};

/// Which bound (if any) clamped the optimal pattern size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Clamp {
    /// `Wₑ` lies inside the feasible interval; the performance bound is
    /// inactive.
    Unconstrained,
    /// `Wₑ < W₁`: the pattern had to be *lengthened* to meet the bound.
    AtLower,
    /// `Wₑ > W₂`: the pattern had to be *shortened* to meet the bound.
    AtUpper,
}

/// Solution of Theorem 1 for a single speed pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalPattern {
    /// Optimal pattern size `Wopt` (Equation 4).
    pub w_opt: f64,
    /// Unconstrained energy minimizer `Wₑ` (Equation 5).
    pub w_e: f64,
    /// Feasible interval `[W₁, W₂]` from the performance constraint.
    pub interval: (f64, f64),
    /// Which bound, if any, is active at `Wopt`.
    pub clamp: Clamp,
}

/// Failure modes of the closed-form solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveError {
    /// No positive `W` satisfies the performance bound (`ρ < ρᵢⱼ`).
    Infeasible,
    /// `λ = 0`: the overhead decreases monotonically in `W`, so no finite
    /// optimal pattern exists (checkpointing is pointless without errors).
    Unbounded,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "performance bound rho is below rho_ij"),
            SolveError::Unbounded => write!(f, "lambda = 0: optimal pattern size is unbounded"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Unconstrained first-order energy minimizer `Wₑ` (Equation 5).
pub fn energy_minimizer(m: &SilentModel, s1: f64, s2: f64) -> f64 {
    FirstOrder::energy_coefficients(m, s1, s2).minimizer()
}

/// Feasible interval `[W₁, W₂]` of pattern sizes satisfying
/// `T(W)/W ≤ ρ` to first order, or `Err(Infeasible)`.
///
/// With `λ = 0` the constraint is linear and the interval is
/// `[W₁, +∞)` (or infeasible if even `W → ∞` violates the bound).
pub fn feasible_interval(
    m: &SilentModel,
    s1: f64,
    s2: f64,
    rho: f64,
) -> Result<(f64, f64), SolveError> {
    feasible_interval_from(&FirstOrder::time_coefficients(m, s1, s2), rho)
}

/// [`feasible_interval`] from precomputed first-order *time* coefficients.
///
/// The quadratic `aW² + bW + c ≤ 0` depends on `(σ₁, σ₂)` only through
/// `t`, so callers holding a candidate table (one entry per speed pair)
/// can resolve feasibility for any `ρ` without touching the model.
pub fn feasible_interval_from(
    t: &OverheadCoefficients,
    rho: f64,
) -> Result<(f64, f64), SolveError> {
    let a = t.linear;
    let b = t.constant - rho;
    let c = t.inverse;
    if a == 0.0 {
        // λ = 0: bW + c ≤ 0.
        if b < 0.0 {
            return Ok((-c / b, f64::INFINITY));
        }
        if b == 0.0 && c <= 0.0 {
            return Ok((0.0, f64::INFINITY));
        }
        return Err(SolveError::Infeasible);
    }
    match solve_quadratic(a, b, c) {
        Roots::None => Err(SolveError::Infeasible),
        Roots::One(w) => {
            if w > 0.0 {
                Ok((w, w))
            } else {
                Err(SolveError::Infeasible)
            }
        }
        Roots::Two(w1, w2) => {
            if w2 <= 0.0 {
                Err(SolveError::Infeasible)
            } else {
                Ok((w1.max(0.0), w2))
            }
        }
    }
}

/// Theorem 1: the optimal pattern size `Wopt = min(max(W₁, Wₑ), W₂)` for a
/// fixed speed pair under performance bound `rho`.
///
/// # Errors
/// * [`SolveError::Infeasible`] if `ρ < ρᵢⱼ` for this pair;
/// * [`SolveError::Unbounded`] if `λ = 0` (no finite optimum exists).
pub fn optimal_pattern(
    m: &SilentModel,
    s1: f64,
    s2: f64,
    rho: f64,
) -> Result<OptimalPattern, SolveError> {
    optimal_pattern_from(
        &FirstOrder::time_coefficients(m, s1, s2),
        energy_minimizer(m, s1, s2),
        m.lambda,
        rho,
    )
}

/// [`optimal_pattern`] from precomputed per-pair invariants: the
/// first-order time coefficients `t` and the unconstrained energy
/// minimizer `w_e` (Equation 5), both independent of `ρ`.
///
/// This is the hot path behind [`crate::BiCritSolver`]'s candidate
/// table: a K-speed, P-point sweep derives the invariants once per pair
/// (O(K²)) instead of once per pair per point (O(K²·P)).
pub fn optimal_pattern_from(
    t: &OverheadCoefficients,
    w_e: f64,
    lambda: f64,
    rho: f64,
) -> Result<OptimalPattern, SolveError> {
    if lambda == 0.0 {
        return Err(SolveError::Unbounded);
    }
    let (w1, w2) = feasible_interval_from(t, rho)?;
    let (w_opt, clamp) = if w_e < w1 {
        (w1, Clamp::AtLower)
    } else if w_e > w2 {
        (w2, Clamp::AtUpper)
    } else {
        (w_e, Clamp::Unconstrained)
    };
    Ok(OptimalPattern {
        w_opt,
        w_e,
        interval: (w1, w2),
        clamp,
    })
}

/// Column-sweep clamp step of Theorem 1 (Equation 4):
/// `W = min(max(W₁, Wₑ), W₂)` for each lane, branchless and free of
/// bounds checks so the sweep autovectorizes alongside
/// [`crate::quadratic::roots_sweep`].
///
/// `lo` holds the smaller feasibility root on entry and is rewritten to
/// the effective lower bound `max(lo, 0)` — the same `w1.max(0.0)` the
/// scalar [`feasible_interval_from`] applies — so callers can classify
/// the clamp (`Wₑ < W₁` / `Wₑ > W₂`) from the exact bounds the kernel
/// compared against. Lanes that are infeasible (`disc < 0` or `hi ≤ 0`)
/// produce garbage the caller masks out.
///
/// # Panics
///
/// If the slices do not all share `lo.len()`.
#[inline]
pub fn clamp_sweep(lo: &mut [f64], hi: &[f64], w_e: &[f64], w: &mut [f64]) {
    let n = lo.len();
    let (hi, w_e, w) = (&hi[..n], &w_e[..n], &mut w[..n]);
    for i in 0..n {
        let w1 = lo[i].max(0.0);
        let raised = if w_e[i] < w1 { w1 } else { w_e[i] };
        w[i] = if raised > hi[i] { hi[i] } else { raised };
        lo[i] = w1;
    }
}

/// Feasibility predicate of one swept lane, matching the accepting
/// branches of [`feasible_interval_from`] for a strict quadratic
/// (`a > 0`): real roots (`disc ≥ 0`) with a positive upper bound.
#[inline]
pub fn lane_feasible(disc: f64, hi: f64) -> bool {
    // Non-short-circuiting `&` keeps the predicate branch-free, so the
    // sweep loops it feeds stay vectorizable.
    (disc >= 0.0) & (hi > 0.0)
}

/// Minimum feasible performance bound `ρᵢⱼ` for a speed pair (Equation 6).
///
/// Any `ρ ≥ ρᵢⱼ` admits a solution for `(σᵢ, σⱼ)`; any `ρ < ρᵢⱼ` does not.
pub fn rho_min(m: &SilentModel, s1: f64, s2: f64) -> f64 {
    let l = m.lambda;
    let (c, v, r) = (m.costs.checkpoint, m.costs.verification, m.costs.recovery);
    1.0 / s1 + 2.0 * ((c + v / s1) * l / (s1 * s2)).sqrt() + l * (r / s1 + v / (s1 * s2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::power::PowerModel;

    fn hera_xscale() -> SilentModel {
        SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn rho_min_equals_minimum_of_first_order_time_overhead() {
        let m = hera_xscale();
        for (s1, s2) in [(0.4, 0.4), (0.15, 1.0), (0.8, 0.6)] {
            let co = FirstOrder::time_coefficients(&m, s1, s2);
            assert!(
                (rho_min(&m, s1, s2) - co.min_value()).abs() < 1e-12,
                "({s1},{s2})"
            );
        }
    }

    #[test]
    fn rho_at_rho_min_is_feasible_with_degenerate_interval() {
        let m = hera_xscale();
        let (s1, s2) = (0.4, 0.8);
        let rho = rho_min(&m, s1, s2);
        let (w1, w2) = feasible_interval(&m, s1, s2, rho * (1.0 + 1e-12)).unwrap();
        // Interval collapses around √(z/y) of the *time* coefficients.
        let t = FirstOrder::time_coefficients(&m, s1, s2);
        let w_star = t.minimizer();
        assert!(w1 <= w_star && w_star <= w2);
        assert!((w2 - w1) / w_star < 1e-4);
    }

    #[test]
    fn slightly_below_rho_min_is_infeasible() {
        let m = hera_xscale();
        let (s1, s2) = (0.4, 0.8);
        let rho = rho_min(&m, s1, s2);
        assert_eq!(
            feasible_interval(&m, s1, s2, rho * (1.0 - 1e-9)),
            Err(SolveError::Infeasible)
        );
    }

    #[test]
    fn paper_rho3_sigma_04_is_unconstrained() {
        // Hera/XScale, ρ = 3, σ1 = σ2 = 0.4: Wopt = We = 2764.
        let m = hera_xscale();
        let sol = optimal_pattern(&m, 0.4, 0.4, 3.0).unwrap();
        assert_eq!(sol.clamp, Clamp::Unconstrained);
        assert!((sol.w_opt - 2764.0).abs() < 1.0);
        assert!((sol.w_opt - sol.w_e).abs() < 1e-9);
    }

    #[test]
    fn paper_rho3_sigma_015_is_infeasible() {
        // 1/0.15 ≈ 6.67 > 3, so σ1 = 0.15 cannot meet ρ = 3.
        let m = hera_xscale();
        for s2 in [0.15, 0.4, 0.6, 0.8, 1.0] {
            assert_eq!(
                optimal_pattern(&m, 0.15, s2, 3.0),
                Err(SolveError::Infeasible),
                "σ2 = {s2}"
            );
        }
    }

    #[test]
    fn returned_w_opt_satisfies_the_constraint() {
        let m = hera_xscale();
        for rho in [1.4, 1.775, 3.0, 8.0] {
            for (s1, s2) in m_speeds() {
                if let Ok(sol) = optimal_pattern(&m, s1, s2, rho) {
                    let t = FirstOrder::time_overhead(&m, sol.w_opt, s1, s2);
                    assert!(t <= rho * (1.0 + 1e-9), "ρ={rho} ({s1},{s2}): T/W = {t}");
                    assert!(sol.w_opt > 0.0);
                }
            }
        }
    }

    fn m_speeds() -> Vec<(f64, f64)> {
        let speeds = [0.15, 0.4, 0.6, 0.8, 1.0];
        let mut v = vec![];
        for &a in &speeds {
            for &b in &speeds {
                v.push((a, b));
            }
        }
        v
    }

    #[test]
    fn clamp_at_lower_when_we_below_interval() {
        // Large C makes Wₑ big... instead force AtLower with a tiny ρ close
        // to ρᵢⱼ and an energy minimizer below the time window.
        // Use high Pio so Wₑ (energy) > W time minimizer: pick the opposite —
        // construct directly: zero-ish κ so energy favors small W? Simplest
        // robust check: scan pairs/ρ until both clamp kinds are observed.
        let m = hera_xscale();
        let mut seen_lower = false;
        let mut seen_upper = false;
        let mut seen_unconstrained = false;
        for rho in [1.3, 1.4, 1.5, 1.775, 2.0, 3.0, 8.0] {
            for (s1, s2) in m_speeds() {
                if let Ok(sol) = optimal_pattern(&m, s1, s2, rho) {
                    match sol.clamp {
                        Clamp::AtLower => seen_lower = true,
                        Clamp::AtUpper => seen_upper = true,
                        Clamp::Unconstrained => seen_unconstrained = true,
                    }
                    // The clamp flag must be consistent with the geometry.
                    match sol.clamp {
                        Clamp::AtLower => {
                            assert!(sol.w_e < sol.interval.0);
                            assert_eq!(sol.w_opt, sol.interval.0);
                        }
                        Clamp::AtUpper => {
                            assert!(sol.w_e > sol.interval.1);
                            assert_eq!(sol.w_opt, sol.interval.1);
                        }
                        Clamp::Unconstrained => {
                            assert_eq!(sol.w_opt, sol.w_e);
                        }
                    }
                }
            }
        }
        assert!(seen_unconstrained, "expected some unconstrained optima");
        assert!(
            seen_lower || seen_upper,
            "expected at least one clamped optimum across the scan"
        );
    }

    #[test]
    fn lambda_zero_is_unbounded() {
        let m = hera_xscale().with_lambda(0.0);
        assert_eq!(
            optimal_pattern(&m, 0.4, 0.4, 3.0),
            Err(SolveError::Unbounded)
        );
        // Feasibility itself is fine: [−c/b, ∞).
        let (w1, w2) = feasible_interval(&m, 0.4, 0.4, 3.0).unwrap();
        assert!(w1 > 0.0);
        assert!(w2.is_infinite());
    }

    #[test]
    fn lambda_zero_infeasible_when_speed_too_slow() {
        let m = hera_xscale().with_lambda(0.0);
        // 1/0.15 > 3 even without errors.
        assert_eq!(
            feasible_interval(&m, 0.15, 0.4, 3.0),
            Err(SolveError::Infeasible)
        );
    }

    #[test]
    fn clamped_solution_is_boundary_optimal() {
        // Wherever the clamp is active, moving further inside the interval
        // must not reduce the (convex) first-order energy overhead.
        let m = hera_xscale();
        for rho in [1.4, 1.775] {
            for (s1, s2) in m_speeds() {
                if let Ok(sol) = optimal_pattern(&m, s1, s2, rho) {
                    let co = FirstOrder::energy_coefficients(&m, s1, s2);
                    let (w1, w2) = sol.interval;
                    let inner = match sol.clamp {
                        Clamp::AtLower => Some(w1 * 1.01),
                        Clamp::AtUpper => Some(w2 * 0.99),
                        Clamp::Unconstrained => None,
                    };
                    if let Some(w_in) = inner {
                        if w_in > w1 && w_in < w2 {
                            assert!(
                                co.eval(sol.w_opt) <= co.eval(w_in) + 1e-9,
                                "clamped point must beat interior probe"
                            );
                        }
                    }
                }
            }
        }
    }
}
