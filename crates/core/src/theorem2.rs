//! Theorem 2 — the `Θ(λ^{-2/3})` checkpointing law (paper §5.3).
//!
//! With **fail-stop errors only** (rate `λ`) and a re-execution speed
//! exactly twice the first-execution speed (`σ₂ = 2σ₁ = 2σ`), the linear
//! coefficient of the second-order time overhead (Equation 11) vanishes and
//!
//! ```text
//! T(W,σ,2σ)/W  =  1/σ + C/W + λ²W²/(24σ³) + λR/σ + O(λ³W²)
//! ```
//!
//! which is minimized at
//!
//! ```text
//! Wopt = (12C/λ²)^(1/3) · σ
//! ```
//!
//! — the first resilience framework where the optimal checkpointing period
//! is *not* of the order of the square root of the platform MTBF:
//! `Wopt = Θ(λ^{-2/3})` instead of Young/Daly's `Θ(λ^{-1/2})`.

/// Theorem 2: optimal pattern size `Wopt = (12C/λ²)^{1/3}·σ` for fail-stop
/// errors with `σ₂ = 2σ₁ = 2σ`.
#[inline]
pub fn optimal_work(c: f64, lambda: f64, sigma: f64) -> f64 {
    (12.0 * c / (lambda * lambda)).cbrt() * sigma
}

/// The second-order time overhead along the Theorem 2 line (`σ₂ = 2σ`),
/// after the linear term cancels:
/// `1/σ + C/W + λ²W²/(24σ³) + λR/σ`.
#[inline]
pub fn time_overhead(c: f64, r: f64, lambda: f64, w: f64, sigma: f64) -> f64 {
    1.0 / sigma + c / w + lambda * lambda * w * w / (24.0 * sigma.powi(3)) + lambda * r / sigma
}

/// Fits the slope of `log Wopt` vs `log λ` by least squares over a set of
/// error rates. Theorem 2 predicts `−2/3`; Young/Daly predicts `−1/2`.
///
/// Callers feeding *measured* `Wopt` samples (e.g. the simulated-slope
/// experiment) get their inputs validated here instead of a silent NaN:
/// every coordinate must be strictly positive (the fit runs in log
/// space) and the `λ` values must not all coincide (the slope would be a
/// 0/0).
///
/// # Panics
///
/// * fewer than two points;
/// * any coordinate `≤ 0` or non-finite — its logarithm is undefined;
/// * zero variance in `ln λ` (all abscissae equal), which would divide
///   by zero.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    assert!(points.len() >= 2, "need at least two points to fit a slope");
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        assert!(
            x > 0.0 && x.is_finite() && y > 0.0 && y.is_finite(),
            "log-log fit needs strictly positive finite coordinates, got ({x}, {y})"
        );
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    let x_variance = n * sxx - sx * sx;
    // Exact-zero check is not enough: rounding can leave a tiny negative
    // residual when all abscissae are equal, so compare against the
    // magnitude of the sums.
    assert!(
        x_variance > f64::EPSILON * sxx.abs().max(1.0),
        "log-log fit needs at least two distinct abscissae (zero variance in ln x)"
    );
    (n * sxy - sx * sy) / x_variance
}

/// Convenience: `(λ, Wopt(λ))` samples of the Theorem 2 law over
/// logarithmically spaced rates in `[lambda_min, lambda_max]`.
pub fn wopt_samples(
    c: f64,
    sigma: f64,
    lambda_min: f64,
    lambda_max: f64,
    n: usize,
) -> Vec<(f64, f64)> {
    assert!(n >= 2 && lambda_min > 0.0 && lambda_max > lambda_min);
    let ratio = (lambda_max / lambda_min).ln();
    (0..n)
        .map(|i| {
            let lambda = lambda_min * (ratio * i as f64 / (n - 1) as f64).exp();
            (lambda, optimal_work(c, lambda, sigma))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::SecondOrder;
    use crate::daly;

    #[test]
    fn closed_form_minimizes_second_order_overhead() {
        let (c, r, lambda, sigma) = (300.0, 300.0, 1e-5, 0.5);
        let w = optimal_work(c, lambda, sigma);
        let f = |w| time_overhead(c, r, lambda, w, sigma);
        assert!(f(w) <= f(w * 0.999));
        assert!(f(w) <= f(w * 1.001));
        // Analytic check: dT/dW = −C/W² + λ²W/(12σ³) = 0.
        let deriv = -c / (w * w) + lambda * lambda * w / (12.0 * sigma.powi(3));
        assert!(deriv.abs() < 1e-15);
    }

    #[test]
    fn slope_is_minus_two_thirds() {
        let pts = wopt_samples(300.0, 0.5, 1e-7, 1e-3, 25);
        let slope = loglog_slope(&pts);
        assert!((slope + 2.0 / 3.0).abs() < 1e-9, "slope = {slope}");
    }

    #[test]
    fn young_daly_slope_is_minus_half() {
        let pts: Vec<_> = (0..20)
            .map(|i| {
                let lambda = 1e-7 * 10f64.powf(i as f64 / 5.0);
                (lambda, daly::young_daly_work(300.0, lambda, 0.5))
            })
            .collect();
        let slope = loglog_slope(&pts);
        assert!((slope + 0.5).abs() < 1e-9, "slope = {slope}");
    }

    #[test]
    fn matches_second_order_expansion_coefficient() {
        // At σ2 = 2σ the Eq-(11) quadratic coefficient is 1/(24σ³), which is
        // what `time_overhead` hard-codes.
        let sigma = 0.7;
        let q = SecondOrder::quadratic_coefficient(sigma, 2.0 * sigma);
        assert!((q - 1.0 / (24.0 * sigma.powi(3))).abs() < 1e-12);
        // And the linear coefficient is exactly zero.
        assert!(SecondOrder::linear_coefficient(sigma, 2.0 * sigma).abs() < 1e-15);
    }

    #[test]
    fn wopt_grows_with_c_and_sigma() {
        let lambda = 1e-5;
        assert!(optimal_work(600.0, lambda, 0.5) > optimal_work(300.0, lambda, 0.5));
        assert!(optimal_work(300.0, lambda, 1.0) > optimal_work(300.0, lambda, 0.5));
        // Cube-root growth in C: ×8 in C doubles Wopt.
        let r = optimal_work(2400.0, lambda, 0.5) / optimal_work(300.0, lambda, 0.5);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wopt_samples_are_log_spaced() {
        let pts = wopt_samples(300.0, 1.0, 1e-6, 1e-2, 5);
        assert_eq!(pts.len(), 5);
        assert!((pts[0].0 - 1e-6).abs() < 1e-18);
        assert!((pts[4].0 - 1e-2).abs() < 1e-10);
        let r1 = pts[1].0 / pts[0].0;
        let r2 = pts[2].0 / pts[1].0;
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn slope_needs_two_points() {
        loglog_slope(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly positive finite coordinates")]
    fn slope_rejects_non_positive_coordinates() {
        loglog_slope(&[(1e-6, 1000.0), (1e-5, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly positive finite coordinates")]
    fn slope_rejects_nan_coordinates() {
        loglog_slope(&[(1e-6, 1000.0), (f64::NAN, 500.0)]);
    }

    #[test]
    #[should_panic(expected = "two distinct abscissae")]
    fn slope_rejects_coincident_abscissae() {
        loglog_slope(&[(1e-5, 1000.0), (1e-5, 500.0)]);
    }
}
