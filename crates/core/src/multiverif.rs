//! Extension: patterns with several verifications per checkpoint.
//!
//! The paper's related work (§6, Benoit/Robert/Raina \[6\]) studies patterns
//! that interleave `q` verifications with one checkpoint: the pattern's
//! `W` units of work are split into `q` equal segments, each followed by a
//! verification; the checkpoint is taken after the `q`-th verification
//! succeeds. A silent error is then detected at the end of the *segment*
//! it struck, losing only part of the pattern's work — at the price of
//! `q − 1` extra verifications. This module combines that pattern shape
//! with this paper's two-speed re-execution model (`q = 1` reduces
//! exactly to Propositions 1–3).
//!
//! Model (silent errors only): per segment at speed `σ`, a silent error
//! strikes with probability `p = 1 − e^{−λW/(qσ)}`. An attempt runs
//! segments until a verification fails (probability `F = 1 − (1−p)^q`
//! overall) or all `q` pass. On failure the application recovers and
//! re-executes the whole pattern at `σ₂` until success, then checkpoints.

use crate::pattern::SilentModel;
use serde::{Deserialize, Serialize};

/// Expected duration of one attempt at speed `sigma` (time until the
/// failing verification, or the full pattern if no error), along with the
/// attempt failure probability.
///
/// Returns `(expected_attempt_time, failure_probability)`.
pub fn attempt_stats(m: &SilentModel, w: f64, q: u32, sigma: f64) -> (f64, f64) {
    assert!(q >= 1, "need at least one verification per pattern");
    let q_f = f64::from(q);
    let seg_work = w / q_f;
    let seg_time = (seg_work + m.costs.verification) / sigma;
    let p = crate::error_model::strike_probability(m.lambda, seg_work / sigma);
    let s = 1.0 - p; // per-segment success
                     // Σ_{i=1}^q s^{i−1} p · i·seg_time + s^q · q·seg_time.
    let mut time = 0.0;
    let mut s_pow = 1.0; // s^{i-1}
    for i in 1..=q {
        time += s_pow * p * f64::from(i) * seg_time;
        s_pow *= s;
    }
    time += s_pow * q_f * seg_time; // s_pow is now s^q
    (time, 1.0 - s_pow)
}

/// Expected time of a pattern of `w` work with `q` verifications per
/// checkpoint, first execution at `sigma1`, re-executions at `sigma2`.
pub fn expected_time(m: &SilentModel, w: f64, q: u32, sigma1: f64, sigma2: f64) -> f64 {
    let c = m.costs.checkpoint;
    let r = m.costs.recovery;
    let (a1, f1) = attempt_stats(m, w, q, sigma1);
    let (a2, f2) = attempt_stats(m, w, q, sigma2);
    // T2: remaining time after a recovery, re-executing at σ2 to success.
    let t2 = (a2 + f2 * r + (1.0 - f2) * c) / (1.0 - f2);
    a1 + f1 * (r + t2) + (1.0 - f1) * c
}

/// Expected energy of a pattern of `w` work with `q` verifications per
/// checkpoint (two speeds).
pub fn expected_energy(m: &SilentModel, w: f64, q: u32, sigma1: f64, sigma2: f64) -> f64 {
    let c = m.costs.checkpoint;
    let r = m.costs.recovery;
    let p_io = m.power.io_power();
    let p1 = m.power.compute_power(sigma1);
    let p2 = m.power.compute_power(sigma2);
    let (a1, f1) = attempt_stats(m, w, q, sigma1);
    let (a2, f2) = attempt_stats(m, w, q, sigma2);
    let e2 = (a2 * p2 + f2 * r * p_io + (1.0 - f2) * c * p_io) / (1.0 - f2);
    a1 * p1 + f1 * (r * p_io + e2) + (1.0 - f1) * c * p_io
}

/// Time overhead `T/W`.
#[inline]
pub fn time_overhead(m: &SilentModel, w: f64, q: u32, s1: f64, s2: f64) -> f64 {
    expected_time(m, w, q, s1, s2) / w
}

/// Energy overhead `E/W`.
#[inline]
pub fn energy_overhead(m: &SilentModel, w: f64, q: u32, s1: f64, s2: f64) -> f64 {
    expected_energy(m, w, q, s1, s2) / w
}

/// Result of the `(W, q, σ₁, σ₂)` optimization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiVerifSolution {
    /// Verifications per checkpoint.
    pub q: u32,
    /// First-execution speed.
    pub sigma1: f64,
    /// Re-execution speed.
    pub sigma2: f64,
    /// Optimal pattern size (work units across all `q` segments).
    pub w_opt: f64,
    /// Achieved energy overhead.
    pub energy_overhead: f64,
    /// Achieved time overhead (≤ ρ).
    pub time_overhead: f64,
}

/// Minimizes the energy overhead over `W` (numerically) and `q ∈ [1,
/// q_max]`, for a fixed speed pair, subject to `T/W ≤ rho`.
pub fn optimize_pair(
    m: &SilentModel,
    s1: f64,
    s2: f64,
    rho: f64,
    q_max: u32,
) -> Option<MultiVerifSolution> {
    let mut best: Option<MultiVerifSolution> = None;
    for q in 1..=q_max.max(1) {
        if let Some(o) = crate::numeric::minimize_with_bound(
            |w| energy_overhead(m, w, q, s1, s2),
            |w| time_overhead(m, w, q, s1, s2),
            rho,
            crate::numeric::W_MIN,
            crate::numeric::W_MAX,
        ) {
            let cand = MultiVerifSolution {
                q,
                sigma1: s1,
                sigma2: s2,
                w_opt: o.w,
                energy_overhead: o.objective,
                time_overhead: o.constraint,
            };
            if best.is_none_or(|b| cand.energy_overhead < b.energy_overhead) {
                best = Some(cand);
            }
        }
    }
    best
}

/// Full BiCrit with multi-verification patterns: minimizes over the speed
/// set and `q ∈ [1, q_max]`.
pub fn optimize(
    m: &SilentModel,
    speeds: &crate::speed::SpeedSet,
    rho: f64,
    q_max: u32,
) -> Option<MultiVerifSolution> {
    speeds
        .pairs()
        .filter_map(|(s1, s2)| optimize_pair(m, s1, s2, rho, q_max))
        .min_by(|a, b| {
            (a.energy_overhead, a.sigma1, a.sigma2, a.q)
                .partial_cmp(&(b.energy_overhead, b.sigma1, b.sigma2, b.q))
                .expect("finite overheads")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::power::PowerModel;
    use crate::speed::SpeedSet;

    fn hera_xscale() -> SilentModel {
        SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn q1_reduces_to_proposition_2_and_3() {
        let m = hera_xscale().with_lambda(1e-4);
        for (w, s1, s2) in [(2764.0, 0.4, 0.8), (5000.0, 1.0, 0.4)] {
            let t_q1 = expected_time(&m, w, 1, s1, s2);
            let t_p2 = m.expected_time(w, s1, s2);
            assert!((t_q1 - t_p2).abs() < 1e-9 * t_p2, "{t_q1} vs {t_p2}");
            let e_q1 = expected_energy(&m, w, 1, s1, s2);
            let e_p3 = m.expected_energy(w, s1, s2);
            assert!((e_q1 - e_p3).abs() < 1e-9 * e_p3, "{e_q1} vs {e_p3}");
        }
    }

    #[test]
    fn attempt_stats_failure_probability_is_whole_pattern_strike() {
        let m = hera_xscale().with_lambda(1e-4);
        let (_, f) = attempt_stats(&m, 4000.0, 4, 0.5);
        // F = 1 − (1−p)^q = 1 − e^{−λW/σ}: independent of q.
        let expected = crate::error_model::strike_probability(m.lambda, 4000.0 / 0.5);
        assert!((f - expected).abs() < 1e-12);
    }

    #[test]
    fn more_verifications_shorten_failed_attempts() {
        // With errors present, expected attempt time decreases with q
        // until the extra verifications dominate.
        let m = hera_xscale().with_lambda(5e-4);
        let (a1, _) = attempt_stats(&m, 8000.0, 1, 0.5);
        let (a4, _) = attempt_stats(&m, 8000.0, 4, 0.5);
        // q = 4 pays 3 extra verifications on success but detects earlier
        // on failure; at this error rate detection wins.
        assert!(
            a4 < a1 + 3.0 * m.costs.verification / 0.5,
            "a4 = {a4}, a1 = {a1}"
        );
    }

    #[test]
    fn moderate_error_rate_prefers_multiple_verifications() {
        // With V ≪ C, splitting the pattern into verified segments wins
        // slightly (early detection wastes less re-executed work): at
        // λ = 2e-5 on Hera/XScale the optimal q is 2.
        let m = hera_xscale().with_lambda(2e-5);
        let best = optimize_pair(&m, 0.4, 0.4, 3.0, 8).unwrap();
        assert!(best.q > 1, "expected q > 1, got {best:?}");
        // And it must beat the q = 1 solution.
        let q1 = crate::numeric::minimize_with_bound(
            |w| energy_overhead(&m, w, 1, 0.4, 0.4),
            |w| time_overhead(&m, w, 1, 0.4, 0.4),
            3.0,
            crate::numeric::W_MIN,
            crate::numeric::W_MAX,
        )
        .unwrap();
        assert!(best.energy_overhead < q1.objective);
    }

    #[test]
    fn low_error_rate_keeps_single_verification_competitive() {
        // At Hera's real λ, the optimal q is small (errors every ~40
        // patterns: extra verifications buy little).
        let m = hera_xscale();
        let best = optimize_pair(&m, 0.4, 0.4, 3.0, 8).unwrap();
        assert!(best.q <= 2, "got q = {}", best.q);
    }

    #[test]
    fn full_optimize_respects_bound_and_beats_single_verif_bicrit() {
        let m = hera_xscale().with_lambda(1e-4);
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        let best = optimize(&m, &speeds, 3.0, 6).unwrap();
        assert!(best.time_overhead <= 3.0 * (1.0 + 1e-9));
        let single = crate::numeric::exact_bicrit_solve(&m, &speeds, 3.0).unwrap();
        assert!(
            best.energy_overhead <= single.2.objective * (1.0 + 1e-9),
            "multi-verif {} vs single-verif {}",
            best.energy_overhead,
            single.2.objective
        );
    }

    #[test]
    fn infeasible_bound_returns_none() {
        let m = hera_xscale();
        assert!(optimize_pair(&m, 0.15, 0.4, 3.0, 4).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one verification")]
    fn q_zero_panics() {
        let m = hera_xscale();
        attempt_stats(&m, 1000.0, 0, 0.5);
    }
}
