//! Application-level execution planning.
//!
//! The BiCrit solver optimizes a single *pattern*; a real application has
//! a total amount of work `Wbase` (§2.3). An [`ExecutionPlan`] lifts the
//! pattern optimum to the application: number of patterns, expected
//! makespan and energy (`Ttotal ≈ T(W)/W · Wbase`,
//! `Etotal ≈ E(W)/W · Wbase`), and the expected number of errors along
//! the way.

use crate::bicrit::{BiCritSolution, BiCritSolver};
use crate::pattern::SilentModel;
use serde::{Deserialize, Serialize};

/// A complete plan for executing `Wbase` units of work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Total application work (work units).
    pub w_base: f64,
    /// The pattern-level optimum this plan is built on.
    pub pattern: BiCritSolution,
    /// Number of full patterns (the last may be fractional).
    pub patterns: f64,
    /// Expected makespan `Ttotal` (s), exact expectations.
    pub expected_makespan: f64,
    /// Expected energy `Etotal` (mJ), exact expectations.
    pub expected_energy: f64,
    /// Expected number of detected silent errors over the whole run.
    pub expected_errors: f64,
}

impl ExecutionPlan {
    /// Builds the plan for `w_base` work from a pattern solution under
    /// `model` (exact Propositions 2–3 evaluated at the pattern optimum).
    pub fn from_solution(model: &SilentModel, sol: BiCritSolution, w_base: f64) -> ExecutionPlan {
        assert!(w_base > 0.0, "application work must be positive");
        let patterns = w_base / sol.w_opt;
        let t_pat = model.expected_time(sol.w_opt, sol.sigma1, sol.sigma2);
        let e_pat = model.expected_energy(sol.w_opt, sol.sigma1, sol.sigma2);
        // Expected detected errors per pattern = expected executions − 1.
        let errs = model.expected_executions(sol.w_opt, sol.sigma1, sol.sigma2) - 1.0;
        ExecutionPlan {
            w_base,
            pattern: sol,
            patterns,
            expected_makespan: patterns * t_pat,
            expected_energy: patterns * e_pat,
            expected_errors: patterns * errs,
        }
    }

    /// Convenience: solve BiCrit and plan in one call.
    ///
    /// Returns `None` when no speed pair satisfies the bound.
    pub fn solve(solver: &BiCritSolver, rho: f64, w_base: f64) -> Option<ExecutionPlan> {
        let sol = solver.solve(rho)?;
        Some(ExecutionPlan::from_solution(solver.model(), sol, w_base))
    }

    /// Effective slowdown versus an ideal error-free, full-speed,
    /// checkpoint-free execution (`Wbase` seconds).
    pub fn slowdown(&self) -> f64 {
        self.expected_makespan / self.w_base
    }

    /// Average power drawn over the run (mW).
    pub fn average_power(&self) -> f64 {
        self.expected_energy / self.expected_makespan
    }
}

impl std::fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "execution plan for Wbase = {:.3e} work units",
            self.w_base
        )?;
        writeln!(
            f,
            "  speeds        : first execution at {}, re-executions at {}",
            self.pattern.sigma1, self.pattern.sigma2
        )?;
        writeln!(
            f,
            "  pattern       : W = {:.0} work units + verification + checkpoint",
            self.pattern.w_opt
        )?;
        writeln!(f, "  patterns      : {:.1}", self.patterns)?;
        writeln!(
            f,
            "  exp. makespan : {:.3e} s  (slowdown {:.3} vs ideal)",
            self.expected_makespan,
            self.slowdown()
        )?;
        writeln!(
            f,
            "  exp. energy   : {:.3e} mJ  (avg power {:.1} mW)",
            self.expected_energy,
            self.average_power()
        )?;
        write!(
            f,
            "  exp. errors   : {:.2} detected silent errors",
            self.expected_errors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::power::PowerModel;
    use crate::speed::SpeedSet;

    fn solver() -> BiCritSolver {
        let model = SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap();
        BiCritSolver::new(
            model,
            SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap(),
        )
    }

    #[test]
    fn plan_scales_linearly_with_w_base() {
        let s = solver();
        let a = ExecutionPlan::solve(&s, 3.0, 1e6).unwrap();
        let b = ExecutionPlan::solve(&s, 3.0, 2e6).unwrap();
        assert!((b.expected_makespan / a.expected_makespan - 2.0).abs() < 1e-12);
        assert!((b.expected_energy / a.expected_energy - 2.0).abs() < 1e-12);
        assert!((b.patterns / a.patterns - 2.0).abs() < 1e-12);
    }

    #[test]
    fn plan_overheads_match_exact_pattern_overheads() {
        let s = solver();
        let plan = ExecutionPlan::solve(&s, 3.0, 1e7).unwrap();
        let m = s.model();
        let sol = plan.pattern;
        let t_ov = m.time_overhead(sol.w_opt, sol.sigma1, sol.sigma2);
        let e_ov = m.energy_overhead(sol.w_opt, sol.sigma1, sol.sigma2);
        assert!((plan.slowdown() - t_ov).abs() < 1e-9 * t_ov);
        assert!((plan.expected_energy / plan.w_base - e_ov).abs() < 1e-9 * e_ov);
    }

    #[test]
    fn plan_respects_bound_in_exact_terms_approximately() {
        // First-order bound ρ = 3 ⇒ exact slowdown within ~1 % of 3 at most.
        let s = solver();
        let plan = ExecutionPlan::solve(&s, 3.0, 1e6).unwrap();
        assert!(plan.slowdown() <= 3.0 * 1.01);
    }

    #[test]
    fn infeasible_bound_gives_none() {
        let s = solver();
        assert!(ExecutionPlan::solve(&s, 1.0, 1e6).is_none());
    }

    #[test]
    fn expected_errors_are_positive_and_sane() {
        let s = solver();
        let plan = ExecutionPlan::solve(&s, 3.0, 1e8).unwrap();
        // λW/σ ≈ 0.023 per pattern, ~36k patterns → hundreds of errors.
        assert!(plan.expected_errors > 100.0);
        assert!(plan.expected_errors < plan.patterns);
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = solver();
        let plan = ExecutionPlan::solve(&s, 3.0, 1e6).unwrap();
        let text = plan.to_string();
        assert!(text.contains("execution plan"));
        assert!(text.contains("re-executions at 0.4"));
        assert!(text.contains("exp. makespan"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_w_base_panics() {
        let s = solver();
        let sol = s.solve(3.0).unwrap();
        ExecutionPlan::from_solution(s.model(), sol, 0.0);
    }

    #[test]
    fn average_power_between_idle_and_max() {
        let s = solver();
        let plan = ExecutionPlan::solve(&s, 3.0, 1e6).unwrap();
        let p = plan.average_power();
        assert!(p > s.model().power.p_idle);
        assert!(p < s.model().power.compute_power(1.0));
    }
}
