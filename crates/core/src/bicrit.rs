//! The **BiCrit** solver (paper §3, solution procedure).
//!
//! ```text
//! minimize   E(W, σ₁, σ₂) / W
//! subject to T(W, σ₁, σ₂) / W ≤ ρ,    σ₁, σ₂ ∈ S
//! ```
//!
//! Procedure (O(K²) over the `K` available speeds):
//! 1. for each speed pair `(σᵢ, σⱼ)` compute `ρᵢⱼ` (Equation 6) and discard
//!    pairs with `ρ < ρᵢⱼ`;
//! 2. for each remaining pair compute `Wopt` (Equation 4) and the
//!    first-order energy overhead (Equation 3);
//! 3. return the pair minimizing the energy overhead.

use crate::approx::{FirstOrder, OverheadCoefficients};
use crate::pattern::SilentModel;
use crate::quadratic::{self, LANE_WIDTH};
use crate::speed::SpeedSet;
use crate::theorem1::{self, Clamp, SolveError};
use serde::{Deserialize, Serialize};

/// A fully-solved BiCrit candidate: speed pair, pattern size, overheads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiCritSolution {
    /// First-execution speed `σ₁`.
    pub sigma1: f64,
    /// Re-execution speed `σ₂`.
    pub sigma2: f64,
    /// Optimal pattern size `Wopt` (Theorem 1).
    pub w_opt: f64,
    /// First-order energy overhead `E(Wopt)/Wopt` (Equation 3) — the
    /// objective value, as reported in the paper's tables.
    pub energy_overhead: f64,
    /// First-order time overhead `T(Wopt)/Wopt` (Equation 2); always `≤ ρ`.
    pub time_overhead: f64,
    /// Minimum feasible bound `ρᵢⱼ` for this speed pair (Equation 6).
    pub rho_min: f64,
    /// Which constraint bound (if any) clamped `Wopt`.
    pub clamp: Clamp,
}

impl BiCritSolution {
    /// Whether the solution uses two distinct speeds.
    #[inline]
    pub fn uses_two_speeds(&self) -> bool {
        self.sigma1 != self.sigma2
    }

    /// Exact (non-Taylor) energy overhead of this solution under `model`
    /// (Proposition 3 evaluated at `Wopt`).
    pub fn exact_energy_overhead(&self, model: &SilentModel) -> f64 {
        model.energy_overhead(self.w_opt, self.sigma1, self.sigma2)
    }

    /// Exact (non-Taylor) time overhead of this solution under `model`
    /// (Proposition 2 evaluated at `Wopt`).
    pub fn exact_time_overhead(&self, model: &SilentModel) -> f64 {
        model.time_overhead(self.w_opt, self.sigma1, self.sigma2)
    }
}

/// Row of the paper's §4.2 tables: for a fixed `σ₁`, the best `σ₂` (if any
/// feasible) with its `Wopt` and energy overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedPairReport {
    /// The fixed first-execution speed.
    pub sigma1: f64,
    /// Best feasible solution with this `σ₁`, or `None` if no `σ₂` makes
    /// the pair feasible (rendered as dashes in the paper).
    pub best: Option<BiCritSolution>,
}

/// Per-pair invariants cached at solver construction. Everything here
/// depends on `(σ₁, σ₂)` and the model only — not on `ρ` — so one table
/// built in `O(K²)` serves every subsequent solve: a K-speed, P-point
/// sweep does the setup once instead of `O(K²·P)` recomputation.
#[derive(Debug, Clone, Copy)]
struct PairInvariants {
    /// First-execution speed `σ₁`.
    sigma1: f64,
    /// Re-execution speed `σ₂`.
    sigma2: f64,
    /// First-order time coefficients (Equation 2) — the feasibility
    /// quadratic is `linear·W² + (constant − ρ)·W + inverse ≤ 0`.
    time: OverheadCoefficients,
    /// First-order energy coefficients (Equation 3) — the objective.
    energy: OverheadCoefficients,
    /// Unconstrained energy minimizer `Wₑ` (Equation 5).
    w_e: f64,
    /// Minimum feasible bound `ρᵢⱼ` (Equation 6).
    rho_min: f64,
}

/// Counter deltas accumulated during a table scan and flushed to the
/// metrics registry once per public call, so the batched paths pay a
/// handful of atomic adds instead of several per (pair × ρ-point).
/// Totals are identical to per-call increments (addition commutes), so
/// deterministic snapshots are unaffected.
#[derive(Debug, Default, Clone, Copy)]
struct ScanCounts {
    evaluated: u64,
    infeasible: u64,
    unbounded: u64,
    clamp_lower: u64,
    clamp_upper: u64,
    clamp_unconstrained: u64,
}

impl ScanCounts {
    fn flush(&self) {
        if self.evaluated > 0 {
            rexec_obs::counter!("bicrit.pairs_evaluated").add(self.evaluated);
            rexec_obs::counter!("bicrit.table_hits").add(self.evaluated);
        }
        if self.infeasible > 0 {
            rexec_obs::counter!("bicrit.pairs_infeasible").add(self.infeasible);
        }
        if self.unbounded > 0 {
            rexec_obs::counter!("bicrit.pairs_unbounded").add(self.unbounded);
        }
        if self.clamp_lower > 0 {
            rexec_obs::counter!("bicrit.clamp_lower").add(self.clamp_lower);
        }
        if self.clamp_upper > 0 {
            rexec_obs::counter!("bicrit.clamp_upper").add(self.clamp_upper);
        }
        if self.clamp_unconstrained > 0 {
            rexec_obs::counter!("bicrit.clamp_unconstrained").add(self.clamp_unconstrained);
        }
    }
}

/// Struct-of-arrays mirror of the candidate table: one contiguous `f64`
/// column per per-pair invariant, in the same entry order as the owning
/// `PairInvariants` list. The batched solver sweeps these columns in
/// [`LANE_WIDTH`]-wide chunks, so the autovectorizer loads full SIMD
/// lanes instead of gathering fields out of 48-byte records.
#[derive(Debug, Clone, Default)]
struct SoaColumns {
    /// Feasibility-quadratic `a` = `time.linear`.
    t_linear: Vec<f64>,
    /// Feasibility-quadratic `b + ρ` = `time.constant` (`b = b₀ − ρ`).
    t_const: Vec<f64>,
    /// Feasibility-quadratic `c` = `time.inverse`.
    t_inverse: Vec<f64>,
    /// Precomputed `4·a·c` — the ρ-independent half of the discriminant
    /// (`4.0 * a * c` left-to-right, the exact product the scalar solver
    /// forms).
    fourac: Vec<f64>,
    /// Unconstrained energy minimizer `Wₑ` (Theorem-1 clamp pivot).
    w_e: Vec<f64>,
    /// Objective columns: `energy.constant` / `linear` / `inverse`.
    e_const: Vec<f64>,
    e_linear: Vec<f64>,
    e_inverse: Vec<f64>,
    /// Original sequence position of each sorted lane (the columns are
    /// sorted by ascending `b₀ = time.constant`; see `from_entries`).
    orig: Vec<u32>,
    /// Logical entry count; the columns themselves are padded to a
    /// multiple of [`LANE_WIDTH`] with infeasible sentinels.
    len: usize,
}

impl SoaColumns {
    fn from_entries<'a>(entries: impl Iterator<Item = &'a PairInvariants>) -> Self {
        let mut cols = SoaColumns::default();
        for inv in entries {
            cols.t_linear.push(inv.time.linear);
            cols.t_const.push(inv.time.constant);
            cols.t_inverse.push(inv.time.inverse);
            cols.fourac.push(4.0 * inv.time.linear * inv.time.inverse);
            cols.w_e.push(inv.w_e);
            cols.e_const.push(inv.energy.constant);
            cols.e_linear.push(inv.energy.linear);
            cols.e_inverse.push(inv.energy.inverse);
        }
        cols.len = cols.t_linear.len();
        // Sort the columns by ascending `b₀`. Feasibility at bound ρ
        // requires `b = b₀ − ρ < 0` (with `a > 0`, `c ≥ 0` both roots
        // carry the sign of `−b`), so in `b₀` order every possibly
        // feasible candidate lives in the prefix `b₀ < ρ` — one binary
        // search per ρ bounds the expensive divide/sqrt sweep to that
        // prefix. `orig` maps each sorted lane back to its entry's
        // original sequence position for winner lookup and tie-breaks.
        let mut perm: Vec<u32> = (0..cols.len as u32).collect();
        perm.sort_by(|&i, &j| {
            cols.t_const[i as usize]
                .partial_cmp(&cols.t_const[j as usize])
                .expect("kernel columns are non-NaN")
                .then(i.cmp(&j))
        });
        let apply =
            |col: &Vec<f64>| -> Vec<f64> { perm.iter().map(|&i| col[i as usize]).collect() };
        cols.t_linear = apply(&cols.t_linear);
        cols.t_const = apply(&cols.t_const);
        cols.t_inverse = apply(&cols.t_inverse);
        cols.fourac = apply(&cols.fourac);
        cols.w_e = apply(&cols.w_e);
        cols.e_const = apply(&cols.e_const);
        cols.e_linear = apply(&cols.e_linear);
        cols.e_inverse = apply(&cols.e_inverse);
        cols.orig = perm;
        // Pad to a whole number of chunks with `b₀ = +∞` sentinels:
        // infeasible and non-rare at every finite ρ (`b = +∞` puts both
        // roots at `−∞`/`−0.0`), sorted after every real candidate, so
        // the binary search never admits them and no sweep needs a
        // sub-chunk special case even if one does reach them.
        let padded = cols.len.next_multiple_of(LANE_WIDTH);
        for _ in cols.len..padded {
            cols.t_linear.push(1.0);
            cols.t_const.push(f64::INFINITY);
            cols.t_inverse.push(1.0);
            cols.fourac.push(4.0);
            cols.w_e.push(1.0);
            cols.e_const.push(1.0);
            cols.e_linear.push(1.0);
            cols.e_inverse.push(1.0);
            cols.orig.push(u32::MAX);
        }
        cols
    }

    /// Logical candidate count (excluding padding).
    fn len(&self) -> usize {
        self.len
    }

    /// Column length including the infeasible padding lanes.
    fn padded_len(&self) -> usize {
        self.t_linear.len()
    }

    /// Whether the branchless kernel models every column: the constraint
    /// must be strictly quadratic and convex (`a > 0`, i.e. `λ > 0`
    /// without underflow or sign flips) with finite coefficients and a
    /// non-negative constant term `c ≥ 0` — `a > 0 ∧ c ≥ 0` is what
    /// makes the prune sweep's `b > 0 ⇒ infeasible` shortcut an exact
    /// proof (both roots share the sign of `−b`). Degenerate tables fall
    /// back to the scalar scan, which handles every branch.
    fn kernel_safe(&self) -> bool {
        // Logical lanes only: the `b₀ = +∞` padding sentinels are part
        // of the kernel's design, not a degeneracy.
        self.t_linear[..self.len]
            .iter()
            .all(|&a| a > 0.0 && a.is_finite())
            && self.t_const[..self.len].iter().all(|x| x.is_finite())
            && self.t_inverse[..self.len]
                .iter()
                .all(|&c| c >= 0.0 && c.is_finite())
    }
}

/// Chunked-kernel bookkeeping, flushed once per public call:
/// `solver.batch.chunks` counts [`LANE_WIDTH`]-wide column sweeps and
/// `solver.batch.pairs_pruned` the infeasible candidates dropped before
/// the argmin select, so traces can attribute batched-solver work.
#[derive(Debug, Default, Clone, Copy)]
struct BatchCounts {
    chunks: u64,
    pairs_pruned: u64,
}

impl BatchCounts {
    fn flush(&self) {
        if self.chunks > 0 {
            rexec_obs::counter!("solver.batch.chunks").add(self.chunks);
            rexec_obs::counter!("solver.batch.pairs_pruned").add(self.pairs_pruned);
        }
    }
}

/// Sweep outcome marker: some lane hit a scalar-only branch (double
/// root, or `b == 0`'s symmetric roots), so the whole point must be
/// redone through the scalar scan to stay bit-identical.
struct RareLanes;

/// The fused clamp/objective/bookkeeping sweep of [`BiCritSolver::sweep_best`]
/// (step 2): Theorem-1 clamp (same ops as [`theorem1::clamp_sweep`]),
/// energy objective (same expression shape as `OverheadCoefficients::eval`),
/// `+∞`-masking of infeasible lanes into `e`, a per-lane feasibility
/// byte into `feas_b`, and the `[feasible, clamp-lower, clamp-upper,
/// rare, feasible-NaN]` tallies as `u32` sums of 0/1 (bool→int converts
/// vectorize; bool→f64 chains do not). A function boundary rather than
/// an inline block so every slice parameter carries `noalias` and the
/// vectorized loop needs no runtime overlap checks.
///
/// `lo` holds the raw lower roots on entry and the clamped `W₁` bounds
/// on exit.
#[allow(clippy::too_many_arguments)]
#[inline]
fn fused_clamp_objective(
    we: &[f64],
    ec: &[f64],
    el: &[f64],
    ei: &[f64],
    disc: &[f64],
    hi: &[f64],
    lo: &mut [f64],
    w: &mut [f64],
    e: &mut [f64],
    feas_b: &mut [u8],
) -> [u32; 5] {
    let n = we.len();
    let (ec, el, ei) = (&ec[..n], &el[..n], &ei[..n]);
    let (disc, hi) = (&disc[..n], &hi[..n]);
    let (lo, w) = (&mut lo[..n], &mut w[..n]);
    let (e, feas_b) = (&mut e[..n], &mut feas_b[..n]);
    let (mut feas_n, mut lower_n, mut upper_n) = (0u32, 0u32, 0u32);
    let (mut rare_n, mut nan_n) = (0u32, 0u32);
    for i in 0..n {
        let w1 = lo[i].max(0.0);
        let raised = if we[i] < w1 { w1 } else { we[i] };
        let wv = if raised > hi[i] { hi[i] } else { raised };
        w[i] = wv;
        lo[i] = w1;
        let raw = ec[i] + el[i] * wv + ei[i] / wv;
        let feas = theorem1::lane_feasible(disc[i], hi[i]);
        e[i] = if feas { raw } else { f64::INFINITY };
        feas_b[i] = feas as u8;
        feas_n += feas as u32;
        lower_n += (feas & (we[i] < w1)) as u32;
        upper_n += (feas & (we[i] > hi[i])) as u32;
        rare_n += (disc[i] == 0.0) as u32;
        nan_n += (feas & raw.is_nan()) as u32;
    }
    [feas_n, lower_n, upper_n, rare_n, nan_n]
}

/// Reusable scratch columns for the sweep kernel, sized to the candidate
/// table on first use and reused across the ρ grid so the batched paths
/// stay allocation-free after the first point.
#[derive(Debug, Default)]
struct SweepScratch {
    /// Effective lower feasibility bound `W₁ = max(lo, 0)` after the
    /// clamp sweep (smaller root before it).
    lo: Vec<f64>,
    /// Larger feasibility root `W₂`.
    hi: Vec<f64>,
    /// Feasibility-quadratic discriminant.
    disc: Vec<f64>,
    /// Clamped work `W = min(max(W₁, Wₑ), W₂)`.
    w: Vec<f64>,
    /// Objective `E(W)/W` column the argmin folds over.
    e: Vec<f64>,
    /// Per-lane prune hints (`1` = may be feasible, `0` = proven
    /// infeasible without roots).
    hint: Vec<u8>,
}

impl SweepScratch {
    fn ensure(&mut self, len: usize) {
        if self.lo.len() != len {
            self.lo.resize(len, 0.0);
            self.hi.resize(len, 0.0);
            self.disc.resize(len, 0.0);
            self.w.resize(len, 0.0);
            self.e.resize(len, 0.0);
            self.hint.resize(len, 0);
        }
    }
}

/// BiCrit solver over a discrete speed set.
#[derive(Debug, Clone)]
pub struct BiCritSolver {
    model: SilentModel,
    speeds: SpeedSet,
    /// Candidate table in `speeds.pairs()` order (σ₁-major, so row `i`
    /// spans `[i·K, (i+1)·K)` and the diagonal sits at stride `K + 1`).
    table: Vec<PairInvariants>,
    /// Column (SoA) view of `table`, swept by the batched kernel.
    soa: SoaColumns,
    /// Column view of the diagonal (σ, σ) entries, for the one-speed
    /// batched path.
    soa_diag: SoaColumns,
    /// Whether the chunked kernel reproduces the scalar math for this
    /// table (strictly quadratic constraint with finite columns).
    kernel_ok: bool,
}

impl BiCritSolver {
    /// Creates a solver for `model` over the available `speeds`,
    /// precomputing the per-pair candidate table (Equations 2–3, 5–6).
    ///
    /// Instrumented: `bicrit.table_builds` / `bicrit.table_pairs` count
    /// constructions and cached pairs; the `bicrit.table_build_secs`
    /// gauge records the build's wall time (gauges stay out of the
    /// deterministic snapshot, so timing does not break reproducibility).
    pub fn new(model: SilentModel, speeds: SpeedSet) -> Self {
        let _span = rexec_obs::span!("bicrit.table_build");
        let build = std::time::Instant::now();
        let table: Vec<PairInvariants> = speeds
            .pairs()
            .map(|(s1, s2)| {
                let energy = FirstOrder::energy_coefficients(&model, s1, s2);
                PairInvariants {
                    sigma1: s1,
                    sigma2: s2,
                    time: FirstOrder::time_coefficients(&model, s1, s2),
                    w_e: energy.minimizer(),
                    energy,
                    rho_min: theorem1::rho_min(&model, s1, s2),
                }
            })
            .collect();
        let soa = SoaColumns::from_entries(table.iter());
        let soa_diag = SoaColumns::from_entries(table.iter().step_by(speeds.len() + 1));
        let kernel_ok = model.lambda != 0.0 && soa.kernel_safe();
        rexec_obs::counter!("bicrit.table_builds").incr();
        rexec_obs::counter!("bicrit.table_pairs").add(table.len() as u64);
        rexec_obs::gauge!("bicrit.table_build_secs").set(build.elapsed().as_secs_f64());
        BiCritSolver {
            model,
            speeds,
            table,
            soa,
            soa_diag,
            kernel_ok,
        }
    }

    /// The underlying analytic model.
    pub fn model(&self) -> &SilentModel {
        &self.model
    }

    /// The available speeds.
    pub fn speeds(&self) -> &SpeedSet {
        &self.speeds
    }

    /// Solves Theorem 1 for one speed pair, returning the full candidate.
    ///
    /// Instrumented: `bicrit.pairs_evaluated` counts every call,
    /// `bicrit.pairs_infeasible` / `bicrit.pairs_unbounded` count the
    /// rejections, and `bicrit.clamp_*` count which Theorem-1 branch the
    /// accepted pattern took.
    pub fn solve_pair(&self, s1: f64, s2: f64, rho: f64) -> Result<BiCritSolution, SolveError> {
        rexec_obs::counter!("bicrit.pairs_evaluated").incr();
        let pat = theorem1::optimal_pattern(&self.model, s1, s2, rho).inspect_err(|e| match e {
            SolveError::Infeasible => {
                rexec_obs::counter!("bicrit.pairs_infeasible").incr();
            }
            SolveError::Unbounded => {
                rexec_obs::counter!("bicrit.pairs_unbounded").incr();
            }
        })?;
        match pat.clamp {
            Clamp::AtLower => rexec_obs::counter!("bicrit.clamp_lower").incr(),
            Clamp::AtUpper => rexec_obs::counter!("bicrit.clamp_upper").incr(),
            Clamp::Unconstrained => rexec_obs::counter!("bicrit.clamp_unconstrained").incr(),
        }
        let e = FirstOrder::energy_overhead(&self.model, pat.w_opt, s1, s2);
        let t = FirstOrder::time_overhead(&self.model, pat.w_opt, s1, s2);
        Ok(BiCritSolution {
            sigma1: s1,
            sigma2: s2,
            w_opt: pat.w_opt,
            energy_overhead: e,
            time_overhead: t,
            rho_min: theorem1::rho_min(&self.model, s1, s2),
            clamp: pat.clamp,
        })
    }

    /// Solves Theorem 1 for one cached table entry. The counter deltas go
    /// into `n` (flushed once per public call); the math is byte-for-byte
    /// the [`solve_pair`](Self::solve_pair) path, evaluated from the
    /// precomputed invariants instead of the model.
    fn solve_entry(
        &self,
        inv: &PairInvariants,
        rho: f64,
        n: &mut ScanCounts,
    ) -> Option<BiCritSolution> {
        n.evaluated += 1;
        let pat = match theorem1::optimal_pattern_from(&inv.time, inv.w_e, self.model.lambda, rho) {
            Ok(pat) => pat,
            Err(SolveError::Infeasible) => {
                n.infeasible += 1;
                return None;
            }
            Err(SolveError::Unbounded) => {
                n.unbounded += 1;
                return None;
            }
        };
        match pat.clamp {
            Clamp::AtLower => n.clamp_lower += 1,
            Clamp::AtUpper => n.clamp_upper += 1,
            Clamp::Unconstrained => n.clamp_unconstrained += 1,
        }
        Some(BiCritSolution {
            sigma1: inv.sigma1,
            sigma2: inv.sigma2,
            w_opt: pat.w_opt,
            energy_overhead: inv.energy.eval(pat.w_opt),
            time_overhead: inv.time.eval(pat.w_opt),
            rho_min: inv.rho_min,
            clamp: pat.clamp,
        })
    }

    /// Allocation-free min-scan of `entries`, ordered by
    /// `(energy_overhead, σ₁, σ₂)`. Strict `<` keeps the *first* optimum
    /// in table order, which matches `sort + first` on the ascending
    /// `pairs()` ordering (full-tuple ties are impossible over distinct
    /// speed pairs).
    fn scan_best<'a>(
        &self,
        entries: impl Iterator<Item = &'a PairInvariants>,
        rho: f64,
        n: &mut ScanCounts,
    ) -> Option<BiCritSolution> {
        let mut best: Option<BiCritSolution> = None;
        for inv in entries {
            let Some(sol) = self.solve_entry(inv, rho, n) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some(b) => (sol.energy_overhead, sol.sigma1, sol.sigma2)
                    .partial_cmp(&(b.energy_overhead, b.sigma1, b.sigma2))
                    .expect("finite overheads")
                    .is_lt(),
            };
            if better {
                best = Some(sol);
            }
        }
        best
    }

    /// The column-sweep kernel over the `b₀`-sorted columns.
    ///
    /// One `partition_point` binary search finds the prefix `b₀ < rho`
    /// — the only lanes that can be feasible (`a > 0 ∧ c ≥ 0` forces
    /// both roots non-positive once `b ≥ 0`; see
    /// [`SoaColumns::kernel_safe`]) — and every pass below runs on just
    /// that prefix, so the expensive divide/sqrt work scales with the
    /// candidates that matter at this ρ, not with K². The passes, each
    /// a branchless sweep the autovectorizer turns into
    /// [`LANE_WIDTH`]-wide SIMD:
    ///
    /// 1. [`quadratic::roots_sweep`] — feasibility-interval roots and
    ///    discriminants (the divider-bound pass; kept as its own small
    ///    loop so the vector body still engages on short prefixes).
    /// 2. A fused clamp/objective/bookkeeping sweep: clamps each pair's
    ///    unconstrained optimum into its feasible interval (same ops as
    ///    [`theorem1::clamp_sweep`]), evaluates the energy objective,
    ///    masks infeasible lanes to `+∞`, records a per-lane
    ///    feasibility byte, and accumulates the feasible/clamp/rare
    ///    tallies as `u32` sums of 0/1 (bool→int converts vectorize;
    ///    bool→f64 chains do not).
    /// 3. Argmin without a scalar fold: a [`LANE_WIDTH`]-lane running
    ///    minimum over the masked objective column, horizontally
    ///    reduced, then a scan for the feasible lane attaining the
    ///    minimum with the **smallest original index** — exactly the
    ///    winner of the scalar first-wins strict-`<` fold, which keeps
    ///    the earliest table entry among equal minima. (`+∞`-masked
    ///    lanes can only match when every feasible objective is `+∞`,
    ///    where earliest-feasible is again the scalar answer.)
    ///
    /// Returns `Ok(Some(lane))` with the winning *sorted-column* lane
    /// (map through `cols.orig` for the table entry), `Ok(None)` if
    /// every candidate is infeasible at `rho`, or `Err(RareLanes)` when
    /// a prefix lane hits arithmetic the branchless math cannot
    /// reproduce — a double root (`disc == 0`, where the scalar path
    /// returns `−b/(2a)` instead of `c/q`) or a feasible NaN objective
    /// (which wins the scalar fold by arrival order, not value). The
    /// caller then redoes the whole point through the scalar scan, and
    /// nothing has been committed to the counters. (`b == 0` needs no
    /// bail: with `c ≥ 0` its discriminant is `−4ac ≤ 0`, infeasible on
    /// both paths.) Otherwise bit-identical to the scalar `scan_best`
    /// over the same entries: the sweeps replicate
    /// `solve_quadratic`/`feasible_interval_from` operation by
    /// operation, and the argmin matches the `(energy, σ₁, σ₂)` tuple
    /// order because ties resolve to the smallest original index.
    fn sweep_best(
        &self,
        cols: &SoaColumns,
        rho: f64,
        n: &mut ScanCounts,
        batch: &mut BatchCounts,
        scratch: &mut SweepScratch,
    ) -> Result<Option<usize>, RareLanes> {
        let len = cols.len();
        scratch.ensure(cols.padded_len());

        // Lanes at and past `p` have `b = b₀ − rho ≥ 0`: provably
        // infeasible, skipped wholesale (`rho` is finite here, so the
        // `+∞` padding is never admitted). Within the prefix `b < 0`
        // strictly — `b₀ < rho` implies the subtraction is negative and
        // nonzero — so the rare `b == 0` lane cannot occur in it.
        // On the sorted column the partition index equals the count of
        // `b₀ < rho`, and the branchless vectorized count beats a
        // binary search, whose data-dependent branches mispredict on
        // every ρ change.
        let p = {
            let b0 = &cols.t_const[..len];
            let mut count = 0u32;
            for &v in b0 {
                count += (v < rho) as u32;
            }
            count as usize
        };
        // Round the prefix up to a whole chunk: the extra lanes are
        // provably infeasible (`b ≥ 0`), so they change no count and
        // never win, but vector-only trip counts keep the sweeps out of
        // their scalar remainder loops. (A freak `disc == 0` among them
        // can only trigger a spurious — still correct — scalar replay.)
        let p = p.next_multiple_of(LANE_WIDTH).min(cols.padded_len());

        quadratic::roots_sweep(
            &cols.t_linear[..p],
            &cols.t_const[..p],
            &cols.t_inverse[..p],
            &cols.fourac[..p],
            rho,
            &mut scratch.lo[..p],
            &mut scratch.hi[..p],
            &mut scratch.disc[..p],
        );

        let [feas_n, lower_n, upper_n, rare_n, nan_n] = fused_clamp_objective(
            &cols.w_e[..p],
            &cols.e_const[..p],
            &cols.e_linear[..p],
            &cols.e_inverse[..p],
            &scratch.disc[..p],
            &scratch.hi[..p],
            &mut scratch.lo[..p],
            &mut scratch.w[..p],
            &mut scratch.e[..p],
            &mut scratch.hint[..p],
        );
        if rare_n + nan_n > 0 {
            return Err(RareLanes);
        }

        let best_lane = if feas_n == 0 {
            None
        } else {
            let mut m8 = [f64::INFINITY; LANE_WIDTH];
            let whole = p - p % LANE_WIDTH;
            for ch in scratch.e[..whole].chunks_exact(LANE_WIDTH) {
                for j in 0..LANE_WIDTH {
                    m8[j] = if ch[j] < m8[j] { ch[j] } else { m8[j] };
                }
            }
            // Tree-shaped horizontal reduce: 3 levels instead of a
            // 7-compare serial chain.
            let r4 = [
                m8[0].min(m8[4]),
                m8[1].min(m8[5]),
                m8[2].min(m8[6]),
                m8[3].min(m8[7]),
            ];
            let mut m = r4[0].min(r4[2]).min(r4[1].min(r4[3]));
            for &v in &scratch.e[whole..p] {
                if v < m {
                    m = v;
                }
            }
            // Among lanes attaining the minimum, the scalar fold keeps
            // the earliest table entry: minimize the original index,
            // carrying the lane in the key's low half. Select-based so
            // the scan stays branch-free (a data-dependent branch here
            // mispredicts constantly and costs more than the sweep).
            let (e, hint) = (&scratch.e[..p], &scratch.hint[..p]);
            let orig = &cols.orig[..p];
            let mut best_key = u64::MAX;
            for i in 0..p {
                let hit = (hint[i] != 0) & (e[i] == m);
                let key = ((orig[i] as u64) << 32) | i as u64;
                let key = if hit { key } else { u64::MAX };
                best_key = if key < best_key { key } else { best_key };
            }
            Some((best_key & u32::MAX as u64) as usize)
        };

        let (feas_lanes, lower, upper) = (feas_n as u64, lower_n as u64, upper_n as u64);
        n.evaluated += len as u64;
        n.infeasible += len as u64 - feas_lanes;
        n.clamp_lower += lower;
        n.clamp_upper += upper;
        n.clamp_unconstrained += feas_lanes - lower - upper;
        batch.chunks += p.div_ceil(LANE_WIDTH) as u64;
        batch.pairs_pruned += len.saturating_sub(p) as u64;
        Ok(best_lane)
    }

    /// Batched best-candidate lookup: the sweep kernel when it models
    /// this table (and `rho` is not NaN), the scalar scan otherwise —
    /// including the rare per-ρ lanes (double root / `b == 0`) the
    /// branchless math cannot reproduce. The winning record is assembled
    /// from the swept columns, which hold the scalar math bit for bit on
    /// the non-rare path.
    fn batched_best(
        &self,
        cols: &SoaColumns,
        stride: usize,
        rho: f64,
        n: &mut ScanCounts,
        batch: &mut BatchCounts,
        scratch: &mut SweepScratch,
    ) -> Option<BiCritSolution> {
        if !self.kernel_ok || !rho.is_finite() {
            return self.scan_best(self.table.iter().step_by(stride), rho, n);
        }
        match self.sweep_best(cols, rho, n, batch, scratch) {
            Ok(Some(lane)) => {
                // The swept columns already hold the scalar path's exact
                // values for a non-rare winner (`clamp_sweep` mirrors the
                // Theorem-1 clamp, the objective column mirrors
                // `OverheadCoefficients::eval`), so the record is
                // assembled without re-deriving the roots.
                let inv = &self.table[cols.orig[lane] as usize * stride];
                let w_opt = scratch.w[lane];
                let clamp = if inv.w_e < scratch.lo[lane] {
                    Clamp::AtLower
                } else if inv.w_e > scratch.hi[lane] {
                    Clamp::AtUpper
                } else {
                    Clamp::Unconstrained
                };
                Some(BiCritSolution {
                    sigma1: inv.sigma1,
                    sigma2: inv.sigma2,
                    w_opt,
                    energy_overhead: scratch.e[lane],
                    time_overhead: inv.time.eval(w_opt),
                    rho_min: inv.rho_min,
                    clamp,
                })
            }
            Ok(None) => None,
            Err(RareLanes) => self.scan_best(self.table.iter().step_by(stride), rho, n),
        }
    }

    /// All feasible candidates under bound `rho`, sorted by increasing
    /// energy overhead (ties broken towards slower `σ₁`, then slower `σ₂`
    /// for determinism).
    pub fn candidates(&self, rho: f64) -> Vec<BiCritSolution> {
        let _timer = rexec_obs::span!("bicrit.candidates");
        let mut n = ScanCounts::default();
        let mut out: Vec<BiCritSolution> = self
            .table
            .iter()
            .filter_map(|inv| self.solve_entry(inv, rho, &mut n))
            .collect();
        n.flush();
        out.sort_by(|a, b| {
            (a.energy_overhead, a.sigma1, a.sigma2)
                .partial_cmp(&(b.energy_overhead, b.sigma1, b.sigma2))
                .expect("finite overheads")
        });
        out
    }

    /// Solves BiCrit: the feasible speed pair minimizing the energy
    /// overhead, or `None` when no pair satisfies `ρ ≥ ρᵢⱼ`.
    ///
    /// Scans the candidate table without allocating; equivalent to
    /// `candidates(rho).first()`.
    pub fn solve(&self, rho: f64) -> Option<BiCritSolution> {
        let _timer = rexec_obs::span!("bicrit.solve");
        let mut n = ScanCounts::default();
        let best = self.scan_best(self.table.iter(), rho, &mut n);
        n.flush();
        best
    }

    /// Solves BiCrit for a batch of bounds through the chunked
    /// column-sweep kernel (one span and one counter flush for the whole
    /// batch). `out[p]` is exactly `solve(rhos[p])`, bit for bit.
    pub fn solve_many(&self, rhos: &[f64]) -> Vec<Option<BiCritSolution>> {
        let mut out = Vec::new();
        self.solve_many_into(rhos, &mut out);
        out
    }

    /// Zero-allocation [`solve_many`](Self::solve_many): clears and fills
    /// `out` in place, so sweep loops can reuse one buffer across grid
    /// rows instead of paying a fresh `Vec` per call.
    pub fn solve_many_into(&self, rhos: &[f64], out: &mut Vec<Option<BiCritSolution>>) {
        let _timer = rexec_obs::span!("bicrit.solve_many");
        out.clear();
        out.reserve(rhos.len());
        let mut n = ScanCounts::default();
        let mut batch = BatchCounts::default();
        let mut scratch = SweepScratch::default();
        for &rho in rhos {
            out.push(self.batched_best(&self.soa, 1, rho, &mut n, &mut batch, &mut scratch));
        }
        rexec_obs::counter!("bicrit.solve_many_points").add(rhos.len() as u64);
        batch.flush();
        n.flush();
    }

    /// Solves the **one-speed** variant (σ₂ constrained to equal σ₁) — the
    /// paper's baseline (dotted curves in Figures 2–14).
    pub fn solve_one_speed(&self, rho: f64) -> Option<BiCritSolution> {
        let mut n = ScanCounts::default();
        let best = self.scan_best(self.diagonal_entries(), rho, &mut n);
        n.flush();
        best
    }

    /// Batched [`solve_one_speed`](Self::solve_one_speed):
    /// `out[p]` is exactly `solve_one_speed(rhos[p])`.
    pub fn solve_one_speed_many(&self, rhos: &[f64]) -> Vec<Option<BiCritSolution>> {
        let mut out = Vec::new();
        self.solve_one_speed_many_into(rhos, &mut out);
        out
    }

    /// Zero-allocation [`solve_one_speed_many`](Self::solve_one_speed_many),
    /// sweeping the diagonal (σ, σ) columns through the chunked kernel.
    pub fn solve_one_speed_many_into(&self, rhos: &[f64], out: &mut Vec<Option<BiCritSolution>>) {
        let _timer = rexec_obs::span!("bicrit.solve_many");
        out.clear();
        out.reserve(rhos.len());
        let mut n = ScanCounts::default();
        let mut batch = BatchCounts::default();
        let mut scratch = SweepScratch::default();
        let stride = self.speeds.len() + 1;
        for &rho in rhos {
            out.push(self.batched_best(
                &self.soa_diag,
                stride,
                rho,
                &mut n,
                &mut batch,
                &mut scratch,
            ));
        }
        rexec_obs::counter!("bicrit.solve_many_points").add(rhos.len() as u64);
        batch.flush();
        n.flush();
    }

    /// The diagonal (σ, σ) table entries: row-major K×K puts them at
    /// stride `K + 1`.
    fn diagonal_entries(&self) -> impl Iterator<Item = &PairInvariants> {
        self.table.iter().step_by(self.speeds.len() + 1)
    }

    /// The paper's §4.2 table: for each `σ₁` in the speed set, the best
    /// feasible `σ₂` with its `Wopt` and energy overhead (or `None`).
    pub fn per_sigma1(&self, rho: f64) -> Vec<SpeedPairReport> {
        let _timer = rexec_obs::span!("bicrit.per_sigma1");
        let mut n = ScanCounts::default();
        let out = self
            .table
            .chunks(self.speeds.len())
            .map(|row| SpeedPairReport {
                sigma1: row[0].sigma1,
                best: self.scan_best(row.iter(), rho, &mut n),
            })
            .collect();
        n.flush();
        out
    }

    /// Smallest bound for which *any* speed pair is feasible:
    /// `min over (i,j) of ρᵢⱼ`.
    pub fn min_feasible_rho(&self) -> f64 {
        self.table
            .iter()
            .map(|inv| inv.rho_min)
            .fold(f64::INFINITY, f64::min)
    }

    /// Relative energy saving of the two-speed optimum over the one-speed
    /// optimum at bound `rho`, in `[0, 1)`; `None` if either is infeasible.
    pub fn two_speed_saving(&self, rho: f64) -> Option<f64> {
        let two = self.solve(rho)?;
        let one = self.solve_one_speed(rho)?;
        Some(1.0 - two.energy_overhead / one.energy_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::power::PowerModel;

    fn hera_xscale_solver() -> BiCritSolver {
        let model = SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap();
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        BiCritSolver::new(model, speeds)
    }

    /// One expected row: σ1, and (best σ2, Wopt, E/W) if feasible.
    type PaperRow = (f64, Option<(f64, f64, f64)>);

    /// The paper's four Hera/XScale tables (§4.2), transcribed.
    fn paper_table(rho: f64) -> Vec<PaperRow> {
        #[allow(clippy::redundant_guards)]
        match rho {
            r if r == 8.0 => vec![
                (0.15, Some((0.4, 1711.0, 466.0))),
                (0.4, Some((0.4, 2764.0, 416.0))),
                (0.6, Some((0.4, 3639.0, 674.0))),
                (0.8, Some((0.4, 4627.0, 1082.0))),
                (1.0, Some((0.4, 5742.0, 1625.0))),
            ],
            r if r == 3.0 => vec![
                (0.15, None),
                (0.4, Some((0.4, 2764.0, 416.0))),
                (0.6, Some((0.4, 3639.0, 674.0))),
                (0.8, Some((0.4, 4627.0, 1082.0))),
                (1.0, Some((0.4, 5742.0, 1625.0))),
            ],
            r if r == 1.775 => vec![
                (0.15, None),
                (0.4, None),
                (0.6, Some((0.8, 4251.0, 690.0))),
                (0.8, Some((0.4, 4627.0, 1082.0))),
                (1.0, Some((0.4, 5742.0, 1625.0))),
            ],
            r if r == 1.4 => vec![
                (0.15, None),
                (0.4, None),
                (0.6, None),
                (0.8, Some((0.4, 4627.0, 1082.0))),
                (1.0, Some((0.4, 5742.0, 1625.0))),
            ],
            _ => unreachable!(),
        }
    }

    fn check_table(rho: f64) {
        let solver = hera_xscale_solver();
        let got = solver.per_sigma1(rho);
        let want = paper_table(rho);
        assert_eq!(got.len(), want.len());
        for (g, (s1, expect)) in got.iter().zip(&want) {
            assert_eq!(g.sigma1, *s1);
            match (g.best, expect) {
                (None, None) => {}
                (Some(sol), Some((s2, w, e))) => {
                    assert_eq!(sol.sigma2, *s2, "ρ={rho} σ1={s1}: best σ2");
                    assert!(
                        (sol.w_opt - w).abs() < 1.0,
                        "ρ={rho} σ1={s1}: Wopt {} vs paper {w}",
                        sol.w_opt
                    );
                    assert!(
                        (sol.energy_overhead - e).abs() < 1.0,
                        "ρ={rho} σ1={s1}: E/W {} vs paper {e}",
                        sol.energy_overhead
                    );
                }
                (got, want) => panic!("ρ={rho} σ1={s1}: {got:?} vs paper {want:?}"),
            }
        }
    }

    #[test]
    fn reproduces_paper_table_rho_8() {
        check_table(8.0);
    }

    #[test]
    fn reproduces_paper_table_rho_3() {
        check_table(3.0);
    }

    #[test]
    fn reproduces_paper_table_rho_1_775() {
        check_table(1.775);
    }

    #[test]
    fn reproduces_paper_table_rho_1_4() {
        check_table(1.4);
    }

    #[test]
    fn overall_best_at_rho_3_is_04_04() {
        let solver = hera_xscale_solver();
        let best = solver.solve(3.0).unwrap();
        assert_eq!((best.sigma1, best.sigma2), (0.4, 0.4));
        assert!(!best.uses_two_speeds());
    }

    #[test]
    fn overall_best_at_rho_1_775_uses_two_speeds() {
        let solver = hera_xscale_solver();
        let best = solver.solve(1.775).unwrap();
        assert_eq!((best.sigma1, best.sigma2), (0.6, 0.8));
        assert!(best.uses_two_speeds());
    }

    #[test]
    fn infeasible_when_rho_below_min() {
        let solver = hera_xscale_solver();
        let rho_star = solver.min_feasible_rho();
        assert!(solver.solve(rho_star * 0.999).is_none());
        assert!(solver.solve(rho_star * 1.001).is_some());
    }

    #[test]
    fn two_speed_never_worse_than_one_speed() {
        let solver = hera_xscale_solver();
        for rho in [1.2, 1.4, 1.775, 2.0, 2.5, 3.0, 5.0, 8.0] {
            if let (Some(two), Some(one)) = (solver.solve(rho), solver.solve_one_speed(rho)) {
                assert!(
                    two.energy_overhead <= one.energy_overhead + 1e-9,
                    "ρ={rho}: two-speed {} > one-speed {}",
                    two.energy_overhead,
                    one.energy_overhead
                );
            }
        }
    }

    #[test]
    fn solutions_respect_the_bound() {
        let solver = hera_xscale_solver();
        for rho in [1.4, 1.775, 3.0, 8.0] {
            for cand in solver.candidates(rho) {
                assert!(
                    cand.time_overhead <= rho * (1.0 + 1e-9),
                    "ρ={rho}: candidate ({},{}) violates bound: {}",
                    cand.sigma1,
                    cand.sigma2,
                    cand.time_overhead
                );
                assert!(cand.rho_min <= rho * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn candidates_sorted_by_energy() {
        let solver = hera_xscale_solver();
        let cands = solver.candidates(3.0);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[0].energy_overhead <= w[1].energy_overhead);
        }
    }

    #[test]
    fn exact_overheads_close_to_first_order() {
        let solver = hera_xscale_solver();
        let best = solver.solve(3.0).unwrap();
        let m = solver.model();
        let exact_e = best.exact_energy_overhead(m);
        let exact_t = best.exact_time_overhead(m);
        assert!((exact_e - best.energy_overhead).abs() / exact_e < 1e-2);
        assert!((exact_t - best.time_overhead).abs() / exact_t < 1e-2);
    }

    #[test]
    fn one_speed_solution_is_diagonal() {
        let solver = hera_xscale_solver();
        let one = solver.solve_one_speed(3.0).unwrap();
        assert_eq!(one.sigma1, one.sigma2);
    }

    #[test]
    fn solve_equals_first_candidate() {
        let solver = hera_xscale_solver();
        for rho in [1.2, 1.4, 1.775, 2.0, 3.0, 8.0] {
            assert_eq!(
                solver.solve(rho),
                solver.candidates(rho).first().copied(),
                "ρ={rho}"
            );
        }
    }

    #[test]
    fn solve_many_matches_per_point_solve() {
        let solver = hera_xscale_solver();
        let rhos: Vec<f64> = (0..60).map(|i| 1.1 + 0.12 * i as f64).collect();
        let batched = solver.solve_many(&rhos);
        assert_eq!(batched.len(), rhos.len());
        for (sol, &rho) in batched.iter().zip(&rhos) {
            assert_eq!(*sol, solver.solve(rho), "ρ={rho}");
        }
    }

    #[test]
    fn solve_one_speed_many_matches_per_point() {
        let solver = hera_xscale_solver();
        let rhos: Vec<f64> = (0..60).map(|i| 1.1 + 0.12 * i as f64).collect();
        let batched = solver.solve_one_speed_many(&rhos);
        for (sol, &rho) in batched.iter().zip(&rhos) {
            assert_eq!(*sol, solver.solve_one_speed(rho), "ρ={rho}");
            if let Some(s) = sol {
                assert_eq!(s.sigma1, s.sigma2);
            }
        }
    }

    #[test]
    fn kernel_matches_scalar_at_k20_including_infeasible() {
        // A K=20 table exercises the full-chunk sweep plus a remainder
        // (400 = 50 × 8 pairs, 20 = 2 × 8 + 4 diagonal entries); the grid
        // starts below min_feasible_rho so whole points are infeasible.
        let model = SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap();
        let speeds: Vec<f64> = (0..20).map(|i| 0.2 + 0.8 * i as f64 / 19.0).collect();
        let solver = BiCritSolver::new(model, SpeedSet::new(speeds).unwrap());
        let lo = solver.min_feasible_rho() * 0.5;
        let rhos: Vec<f64> = (0..120).map(|i| lo + 0.08 * i as f64).collect();
        for (sol, &rho) in solver.solve_many(&rhos).iter().zip(&rhos) {
            assert_eq!(*sol, solver.solve(rho), "ρ={rho}");
        }
        for (sol, &rho) in solver.solve_one_speed_many(&rhos).iter().zip(&rhos) {
            assert_eq!(*sol, solver.solve_one_speed(rho), "ρ={rho}");
        }
    }

    #[test]
    fn solve_many_into_reuses_buffer_and_matches() {
        let solver = hera_xscale_solver();
        let rhos: Vec<f64> = (0..40).map(|i| 1.2 + 0.15 * i as f64).collect();
        let mut buf = Vec::new();
        solver.solve_many_into(&rhos, &mut buf);
        assert_eq!(buf, solver.solve_many(&rhos));
        let cap = buf.capacity();
        // Refilling with a same-sized grid must not reallocate.
        solver.solve_many_into(&rhos, &mut buf);
        assert_eq!(buf.capacity(), cap);
        solver.solve_one_speed_many_into(&rhos, &mut buf);
        assert_eq!(buf, solver.solve_one_speed_many(&rhos));
    }

    #[test]
    fn lambda_zero_table_falls_back_to_scalar_scan() {
        let model = SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
        .with_lambda(0.0);
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        let solver = BiCritSolver::new(model, speeds);
        let rhos = [1.4, 3.0, 8.0];
        for (sol, &rho) in solver.solve_many(&rhos).iter().zip(&rhos) {
            assert_eq!(*sol, solver.solve(rho), "ρ={rho}");
            assert!(sol.is_none(), "λ=0 is unbounded for every pair");
        }
    }

    #[test]
    fn table_matches_uncached_solve_pair() {
        // The cached entries must be byte-for-byte the uncached math.
        let solver = hera_xscale_solver();
        for rho in [1.4, 1.775, 3.0, 8.0] {
            for cand in solver.candidates(rho) {
                let direct = solver.solve_pair(cand.sigma1, cand.sigma2, rho).unwrap();
                assert_eq!(cand, direct, "ρ={rho} ({}, {})", cand.sigma1, cand.sigma2);
            }
        }
    }

    #[test]
    fn saving_nonnegative_where_defined() {
        let solver = hera_xscale_solver();
        for rho in [1.4, 1.775, 3.0, 8.0] {
            if let Some(s) = solver.two_speed_saving(rho) {
                assert!((0.0..1.0).contains(&(s + 1e-12)), "ρ={rho}: saving {s}");
            }
        }
    }
}
