//! The **BiCrit** solver (paper §3, solution procedure).
//!
//! ```text
//! minimize   E(W, σ₁, σ₂) / W
//! subject to T(W, σ₁, σ₂) / W ≤ ρ,    σ₁, σ₂ ∈ S
//! ```
//!
//! Procedure (O(K²) over the `K` available speeds):
//! 1. for each speed pair `(σᵢ, σⱼ)` compute `ρᵢⱼ` (Equation 6) and discard
//!    pairs with `ρ < ρᵢⱼ`;
//! 2. for each remaining pair compute `Wopt` (Equation 4) and the
//!    first-order energy overhead (Equation 3);
//! 3. return the pair minimizing the energy overhead.

use crate::approx::{FirstOrder, OverheadCoefficients};
use crate::pattern::SilentModel;
use crate::speed::SpeedSet;
use crate::theorem1::{self, Clamp, SolveError};
use serde::{Deserialize, Serialize};

/// A fully-solved BiCrit candidate: speed pair, pattern size, overheads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiCritSolution {
    /// First-execution speed `σ₁`.
    pub sigma1: f64,
    /// Re-execution speed `σ₂`.
    pub sigma2: f64,
    /// Optimal pattern size `Wopt` (Theorem 1).
    pub w_opt: f64,
    /// First-order energy overhead `E(Wopt)/Wopt` (Equation 3) — the
    /// objective value, as reported in the paper's tables.
    pub energy_overhead: f64,
    /// First-order time overhead `T(Wopt)/Wopt` (Equation 2); always `≤ ρ`.
    pub time_overhead: f64,
    /// Minimum feasible bound `ρᵢⱼ` for this speed pair (Equation 6).
    pub rho_min: f64,
    /// Which constraint bound (if any) clamped `Wopt`.
    pub clamp: Clamp,
}

impl BiCritSolution {
    /// Whether the solution uses two distinct speeds.
    #[inline]
    pub fn uses_two_speeds(&self) -> bool {
        self.sigma1 != self.sigma2
    }

    /// Exact (non-Taylor) energy overhead of this solution under `model`
    /// (Proposition 3 evaluated at `Wopt`).
    pub fn exact_energy_overhead(&self, model: &SilentModel) -> f64 {
        model.energy_overhead(self.w_opt, self.sigma1, self.sigma2)
    }

    /// Exact (non-Taylor) time overhead of this solution under `model`
    /// (Proposition 2 evaluated at `Wopt`).
    pub fn exact_time_overhead(&self, model: &SilentModel) -> f64 {
        model.time_overhead(self.w_opt, self.sigma1, self.sigma2)
    }
}

/// Row of the paper's §4.2 tables: for a fixed `σ₁`, the best `σ₂` (if any
/// feasible) with its `Wopt` and energy overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedPairReport {
    /// The fixed first-execution speed.
    pub sigma1: f64,
    /// Best feasible solution with this `σ₁`, or `None` if no `σ₂` makes
    /// the pair feasible (rendered as dashes in the paper).
    pub best: Option<BiCritSolution>,
}

/// Per-pair invariants cached at solver construction. Everything here
/// depends on `(σ₁, σ₂)` and the model only — not on `ρ` — so one table
/// built in `O(K²)` serves every subsequent solve: a K-speed, P-point
/// sweep does the setup once instead of `O(K²·P)` recomputation.
#[derive(Debug, Clone, Copy)]
struct PairInvariants {
    /// First-execution speed `σ₁`.
    sigma1: f64,
    /// Re-execution speed `σ₂`.
    sigma2: f64,
    /// First-order time coefficients (Equation 2) — the feasibility
    /// quadratic is `linear·W² + (constant − ρ)·W + inverse ≤ 0`.
    time: OverheadCoefficients,
    /// First-order energy coefficients (Equation 3) — the objective.
    energy: OverheadCoefficients,
    /// Unconstrained energy minimizer `Wₑ` (Equation 5).
    w_e: f64,
    /// Minimum feasible bound `ρᵢⱼ` (Equation 6).
    rho_min: f64,
}

/// Counter deltas accumulated during a table scan and flushed to the
/// metrics registry once per public call, so the batched paths pay a
/// handful of atomic adds instead of several per (pair × ρ-point).
/// Totals are identical to per-call increments (addition commutes), so
/// deterministic snapshots are unaffected.
#[derive(Debug, Default, Clone, Copy)]
struct ScanCounts {
    evaluated: u64,
    infeasible: u64,
    unbounded: u64,
    clamp_lower: u64,
    clamp_upper: u64,
    clamp_unconstrained: u64,
}

impl ScanCounts {
    fn flush(&self) {
        if self.evaluated > 0 {
            rexec_obs::counter!("bicrit.pairs_evaluated").add(self.evaluated);
            rexec_obs::counter!("bicrit.table_hits").add(self.evaluated);
        }
        if self.infeasible > 0 {
            rexec_obs::counter!("bicrit.pairs_infeasible").add(self.infeasible);
        }
        if self.unbounded > 0 {
            rexec_obs::counter!("bicrit.pairs_unbounded").add(self.unbounded);
        }
        if self.clamp_lower > 0 {
            rexec_obs::counter!("bicrit.clamp_lower").add(self.clamp_lower);
        }
        if self.clamp_upper > 0 {
            rexec_obs::counter!("bicrit.clamp_upper").add(self.clamp_upper);
        }
        if self.clamp_unconstrained > 0 {
            rexec_obs::counter!("bicrit.clamp_unconstrained").add(self.clamp_unconstrained);
        }
    }
}

/// BiCrit solver over a discrete speed set.
#[derive(Debug, Clone)]
pub struct BiCritSolver {
    model: SilentModel,
    speeds: SpeedSet,
    /// Candidate table in `speeds.pairs()` order (σ₁-major, so row `i`
    /// spans `[i·K, (i+1)·K)` and the diagonal sits at stride `K + 1`).
    table: Vec<PairInvariants>,
}

impl BiCritSolver {
    /// Creates a solver for `model` over the available `speeds`,
    /// precomputing the per-pair candidate table (Equations 2–3, 5–6).
    ///
    /// Instrumented: `bicrit.table_builds` / `bicrit.table_pairs` count
    /// constructions and cached pairs; the `bicrit.table_build_secs`
    /// gauge records the build's wall time (gauges stay out of the
    /// deterministic snapshot, so timing does not break reproducibility).
    pub fn new(model: SilentModel, speeds: SpeedSet) -> Self {
        let build = std::time::Instant::now();
        let table: Vec<PairInvariants> = speeds
            .pairs()
            .map(|(s1, s2)| {
                let energy = FirstOrder::energy_coefficients(&model, s1, s2);
                PairInvariants {
                    sigma1: s1,
                    sigma2: s2,
                    time: FirstOrder::time_coefficients(&model, s1, s2),
                    w_e: energy.minimizer(),
                    energy,
                    rho_min: theorem1::rho_min(&model, s1, s2),
                }
            })
            .collect();
        rexec_obs::counter!("bicrit.table_builds").incr();
        rexec_obs::counter!("bicrit.table_pairs").add(table.len() as u64);
        rexec_obs::gauge!("bicrit.table_build_secs").set(build.elapsed().as_secs_f64());
        BiCritSolver {
            model,
            speeds,
            table,
        }
    }

    /// The underlying analytic model.
    pub fn model(&self) -> &SilentModel {
        &self.model
    }

    /// The available speeds.
    pub fn speeds(&self) -> &SpeedSet {
        &self.speeds
    }

    /// Solves Theorem 1 for one speed pair, returning the full candidate.
    ///
    /// Instrumented: `bicrit.pairs_evaluated` counts every call,
    /// `bicrit.pairs_infeasible` / `bicrit.pairs_unbounded` count the
    /// rejections, and `bicrit.clamp_*` count which Theorem-1 branch the
    /// accepted pattern took.
    pub fn solve_pair(&self, s1: f64, s2: f64, rho: f64) -> Result<BiCritSolution, SolveError> {
        rexec_obs::counter!("bicrit.pairs_evaluated").incr();
        let pat = theorem1::optimal_pattern(&self.model, s1, s2, rho).inspect_err(|e| match e {
            SolveError::Infeasible => {
                rexec_obs::counter!("bicrit.pairs_infeasible").incr();
            }
            SolveError::Unbounded => {
                rexec_obs::counter!("bicrit.pairs_unbounded").incr();
            }
        })?;
        match pat.clamp {
            Clamp::AtLower => rexec_obs::counter!("bicrit.clamp_lower").incr(),
            Clamp::AtUpper => rexec_obs::counter!("bicrit.clamp_upper").incr(),
            Clamp::Unconstrained => rexec_obs::counter!("bicrit.clamp_unconstrained").incr(),
        }
        let e = FirstOrder::energy_overhead(&self.model, pat.w_opt, s1, s2);
        let t = FirstOrder::time_overhead(&self.model, pat.w_opt, s1, s2);
        Ok(BiCritSolution {
            sigma1: s1,
            sigma2: s2,
            w_opt: pat.w_opt,
            energy_overhead: e,
            time_overhead: t,
            rho_min: theorem1::rho_min(&self.model, s1, s2),
            clamp: pat.clamp,
        })
    }

    /// Solves Theorem 1 for one cached table entry. The counter deltas go
    /// into `n` (flushed once per public call); the math is byte-for-byte
    /// the [`solve_pair`](Self::solve_pair) path, evaluated from the
    /// precomputed invariants instead of the model.
    fn solve_entry(
        &self,
        inv: &PairInvariants,
        rho: f64,
        n: &mut ScanCounts,
    ) -> Option<BiCritSolution> {
        n.evaluated += 1;
        let pat = match theorem1::optimal_pattern_from(&inv.time, inv.w_e, self.model.lambda, rho) {
            Ok(pat) => pat,
            Err(SolveError::Infeasible) => {
                n.infeasible += 1;
                return None;
            }
            Err(SolveError::Unbounded) => {
                n.unbounded += 1;
                return None;
            }
        };
        match pat.clamp {
            Clamp::AtLower => n.clamp_lower += 1,
            Clamp::AtUpper => n.clamp_upper += 1,
            Clamp::Unconstrained => n.clamp_unconstrained += 1,
        }
        Some(BiCritSolution {
            sigma1: inv.sigma1,
            sigma2: inv.sigma2,
            w_opt: pat.w_opt,
            energy_overhead: inv.energy.eval(pat.w_opt),
            time_overhead: inv.time.eval(pat.w_opt),
            rho_min: inv.rho_min,
            clamp: pat.clamp,
        })
    }

    /// Allocation-free min-scan of `entries`, ordered by
    /// `(energy_overhead, σ₁, σ₂)`. Strict `<` keeps the *first* optimum
    /// in table order, which matches `sort + first` on the ascending
    /// `pairs()` ordering (full-tuple ties are impossible over distinct
    /// speed pairs).
    fn scan_best<'a>(
        &self,
        entries: impl Iterator<Item = &'a PairInvariants>,
        rho: f64,
        n: &mut ScanCounts,
    ) -> Option<BiCritSolution> {
        let mut best: Option<BiCritSolution> = None;
        for inv in entries {
            let Some(sol) = self.solve_entry(inv, rho, n) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some(b) => (sol.energy_overhead, sol.sigma1, sol.sigma2)
                    .partial_cmp(&(b.energy_overhead, b.sigma1, b.sigma2))
                    .expect("finite overheads")
                    .is_lt(),
            };
            if better {
                best = Some(sol);
            }
        }
        best
    }

    /// All feasible candidates under bound `rho`, sorted by increasing
    /// energy overhead (ties broken towards slower `σ₁`, then slower `σ₂`
    /// for determinism).
    pub fn candidates(&self, rho: f64) -> Vec<BiCritSolution> {
        let _timer = rexec_obs::span!("bicrit.candidates");
        let mut n = ScanCounts::default();
        let mut out: Vec<BiCritSolution> = self
            .table
            .iter()
            .filter_map(|inv| self.solve_entry(inv, rho, &mut n))
            .collect();
        n.flush();
        out.sort_by(|a, b| {
            (a.energy_overhead, a.sigma1, a.sigma2)
                .partial_cmp(&(b.energy_overhead, b.sigma1, b.sigma2))
                .expect("finite overheads")
        });
        out
    }

    /// Solves BiCrit: the feasible speed pair minimizing the energy
    /// overhead, or `None` when no pair satisfies `ρ ≥ ρᵢⱼ`.
    ///
    /// Scans the candidate table without allocating; equivalent to
    /// `candidates(rho).first()`.
    pub fn solve(&self, rho: f64) -> Option<BiCritSolution> {
        let _timer = rexec_obs::span!("bicrit.solve");
        let mut n = ScanCounts::default();
        let best = self.scan_best(self.table.iter(), rho, &mut n);
        n.flush();
        best
    }

    /// Solves BiCrit for a batch of bounds, amortizing the candidate-table
    /// scan bookkeeping (one span and one counter flush for the whole
    /// batch). `out[p]` is exactly `solve(rhos[p])`.
    pub fn solve_many(&self, rhos: &[f64]) -> Vec<Option<BiCritSolution>> {
        let _timer = rexec_obs::span!("bicrit.solve_many");
        let mut n = ScanCounts::default();
        let out = rhos
            .iter()
            .map(|&rho| self.scan_best(self.table.iter(), rho, &mut n))
            .collect();
        rexec_obs::counter!("bicrit.solve_many_points").add(rhos.len() as u64);
        n.flush();
        out
    }

    /// Solves the **one-speed** variant (σ₂ constrained to equal σ₁) — the
    /// paper's baseline (dotted curves in Figures 2–14).
    pub fn solve_one_speed(&self, rho: f64) -> Option<BiCritSolution> {
        let mut n = ScanCounts::default();
        let best = self.scan_best(self.diagonal_entries(), rho, &mut n);
        n.flush();
        best
    }

    /// Batched [`solve_one_speed`](Self::solve_one_speed):
    /// `out[p]` is exactly `solve_one_speed(rhos[p])`.
    pub fn solve_one_speed_many(&self, rhos: &[f64]) -> Vec<Option<BiCritSolution>> {
        let _timer = rexec_obs::span!("bicrit.solve_many");
        let mut n = ScanCounts::default();
        let out = rhos
            .iter()
            .map(|&rho| self.scan_best(self.diagonal_entries(), rho, &mut n))
            .collect();
        rexec_obs::counter!("bicrit.solve_many_points").add(rhos.len() as u64);
        n.flush();
        out
    }

    /// The diagonal (σ, σ) table entries: row-major K×K puts them at
    /// stride `K + 1`.
    fn diagonal_entries(&self) -> impl Iterator<Item = &PairInvariants> {
        self.table.iter().step_by(self.speeds.len() + 1)
    }

    /// The paper's §4.2 table: for each `σ₁` in the speed set, the best
    /// feasible `σ₂` with its `Wopt` and energy overhead (or `None`).
    pub fn per_sigma1(&self, rho: f64) -> Vec<SpeedPairReport> {
        let _timer = rexec_obs::span!("bicrit.per_sigma1");
        let mut n = ScanCounts::default();
        let out = self
            .table
            .chunks(self.speeds.len())
            .map(|row| SpeedPairReport {
                sigma1: row[0].sigma1,
                best: self.scan_best(row.iter(), rho, &mut n),
            })
            .collect();
        n.flush();
        out
    }

    /// Smallest bound for which *any* speed pair is feasible:
    /// `min over (i,j) of ρᵢⱼ`.
    pub fn min_feasible_rho(&self) -> f64 {
        self.table
            .iter()
            .map(|inv| inv.rho_min)
            .fold(f64::INFINITY, f64::min)
    }

    /// Relative energy saving of the two-speed optimum over the one-speed
    /// optimum at bound `rho`, in `[0, 1)`; `None` if either is infeasible.
    pub fn two_speed_saving(&self, rho: f64) -> Option<f64> {
        let two = self.solve(rho)?;
        let one = self.solve_one_speed(rho)?;
        Some(1.0 - two.energy_overhead / one.energy_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::power::PowerModel;

    fn hera_xscale_solver() -> BiCritSolver {
        let model = SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap();
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        BiCritSolver::new(model, speeds)
    }

    /// One expected row: σ1, and (best σ2, Wopt, E/W) if feasible.
    type PaperRow = (f64, Option<(f64, f64, f64)>);

    /// The paper's four Hera/XScale tables (§4.2), transcribed.
    fn paper_table(rho: f64) -> Vec<PaperRow> {
        #[allow(clippy::redundant_guards)]
        match rho {
            r if r == 8.0 => vec![
                (0.15, Some((0.4, 1711.0, 466.0))),
                (0.4, Some((0.4, 2764.0, 416.0))),
                (0.6, Some((0.4, 3639.0, 674.0))),
                (0.8, Some((0.4, 4627.0, 1082.0))),
                (1.0, Some((0.4, 5742.0, 1625.0))),
            ],
            r if r == 3.0 => vec![
                (0.15, None),
                (0.4, Some((0.4, 2764.0, 416.0))),
                (0.6, Some((0.4, 3639.0, 674.0))),
                (0.8, Some((0.4, 4627.0, 1082.0))),
                (1.0, Some((0.4, 5742.0, 1625.0))),
            ],
            r if r == 1.775 => vec![
                (0.15, None),
                (0.4, None),
                (0.6, Some((0.8, 4251.0, 690.0))),
                (0.8, Some((0.4, 4627.0, 1082.0))),
                (1.0, Some((0.4, 5742.0, 1625.0))),
            ],
            r if r == 1.4 => vec![
                (0.15, None),
                (0.4, None),
                (0.6, None),
                (0.8, Some((0.4, 4627.0, 1082.0))),
                (1.0, Some((0.4, 5742.0, 1625.0))),
            ],
            _ => unreachable!(),
        }
    }

    fn check_table(rho: f64) {
        let solver = hera_xscale_solver();
        let got = solver.per_sigma1(rho);
        let want = paper_table(rho);
        assert_eq!(got.len(), want.len());
        for (g, (s1, expect)) in got.iter().zip(&want) {
            assert_eq!(g.sigma1, *s1);
            match (g.best, expect) {
                (None, None) => {}
                (Some(sol), Some((s2, w, e))) => {
                    assert_eq!(sol.sigma2, *s2, "ρ={rho} σ1={s1}: best σ2");
                    assert!(
                        (sol.w_opt - w).abs() < 1.0,
                        "ρ={rho} σ1={s1}: Wopt {} vs paper {w}",
                        sol.w_opt
                    );
                    assert!(
                        (sol.energy_overhead - e).abs() < 1.0,
                        "ρ={rho} σ1={s1}: E/W {} vs paper {e}",
                        sol.energy_overhead
                    );
                }
                (got, want) => panic!("ρ={rho} σ1={s1}: {got:?} vs paper {want:?}"),
            }
        }
    }

    #[test]
    fn reproduces_paper_table_rho_8() {
        check_table(8.0);
    }

    #[test]
    fn reproduces_paper_table_rho_3() {
        check_table(3.0);
    }

    #[test]
    fn reproduces_paper_table_rho_1_775() {
        check_table(1.775);
    }

    #[test]
    fn reproduces_paper_table_rho_1_4() {
        check_table(1.4);
    }

    #[test]
    fn overall_best_at_rho_3_is_04_04() {
        let solver = hera_xscale_solver();
        let best = solver.solve(3.0).unwrap();
        assert_eq!((best.sigma1, best.sigma2), (0.4, 0.4));
        assert!(!best.uses_two_speeds());
    }

    #[test]
    fn overall_best_at_rho_1_775_uses_two_speeds() {
        let solver = hera_xscale_solver();
        let best = solver.solve(1.775).unwrap();
        assert_eq!((best.sigma1, best.sigma2), (0.6, 0.8));
        assert!(best.uses_two_speeds());
    }

    #[test]
    fn infeasible_when_rho_below_min() {
        let solver = hera_xscale_solver();
        let rho_star = solver.min_feasible_rho();
        assert!(solver.solve(rho_star * 0.999).is_none());
        assert!(solver.solve(rho_star * 1.001).is_some());
    }

    #[test]
    fn two_speed_never_worse_than_one_speed() {
        let solver = hera_xscale_solver();
        for rho in [1.2, 1.4, 1.775, 2.0, 2.5, 3.0, 5.0, 8.0] {
            if let (Some(two), Some(one)) = (solver.solve(rho), solver.solve_one_speed(rho)) {
                assert!(
                    two.energy_overhead <= one.energy_overhead + 1e-9,
                    "ρ={rho}: two-speed {} > one-speed {}",
                    two.energy_overhead,
                    one.energy_overhead
                );
            }
        }
    }

    #[test]
    fn solutions_respect_the_bound() {
        let solver = hera_xscale_solver();
        for rho in [1.4, 1.775, 3.0, 8.0] {
            for cand in solver.candidates(rho) {
                assert!(
                    cand.time_overhead <= rho * (1.0 + 1e-9),
                    "ρ={rho}: candidate ({},{}) violates bound: {}",
                    cand.sigma1,
                    cand.sigma2,
                    cand.time_overhead
                );
                assert!(cand.rho_min <= rho * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn candidates_sorted_by_energy() {
        let solver = hera_xscale_solver();
        let cands = solver.candidates(3.0);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[0].energy_overhead <= w[1].energy_overhead);
        }
    }

    #[test]
    fn exact_overheads_close_to_first_order() {
        let solver = hera_xscale_solver();
        let best = solver.solve(3.0).unwrap();
        let m = solver.model();
        let exact_e = best.exact_energy_overhead(m);
        let exact_t = best.exact_time_overhead(m);
        assert!((exact_e - best.energy_overhead).abs() / exact_e < 1e-2);
        assert!((exact_t - best.time_overhead).abs() / exact_t < 1e-2);
    }

    #[test]
    fn one_speed_solution_is_diagonal() {
        let solver = hera_xscale_solver();
        let one = solver.solve_one_speed(3.0).unwrap();
        assert_eq!(one.sigma1, one.sigma2);
    }

    #[test]
    fn solve_equals_first_candidate() {
        let solver = hera_xscale_solver();
        for rho in [1.2, 1.4, 1.775, 2.0, 3.0, 8.0] {
            assert_eq!(
                solver.solve(rho),
                solver.candidates(rho).first().copied(),
                "ρ={rho}"
            );
        }
    }

    #[test]
    fn solve_many_matches_per_point_solve() {
        let solver = hera_xscale_solver();
        let rhos: Vec<f64> = (0..60).map(|i| 1.1 + 0.12 * i as f64).collect();
        let batched = solver.solve_many(&rhos);
        assert_eq!(batched.len(), rhos.len());
        for (sol, &rho) in batched.iter().zip(&rhos) {
            assert_eq!(*sol, solver.solve(rho), "ρ={rho}");
        }
    }

    #[test]
    fn solve_one_speed_many_matches_per_point() {
        let solver = hera_xscale_solver();
        let rhos: Vec<f64> = (0..60).map(|i| 1.1 + 0.12 * i as f64).collect();
        let batched = solver.solve_one_speed_many(&rhos);
        for (sol, &rho) in batched.iter().zip(&rhos) {
            assert_eq!(*sol, solver.solve_one_speed(rho), "ρ={rho}");
            if let Some(s) = sol {
                assert_eq!(s.sigma1, s.sigma2);
            }
        }
    }

    #[test]
    fn table_matches_uncached_solve_pair() {
        // The cached entries must be byte-for-byte the uncached math.
        let solver = hera_xscale_solver();
        for rho in [1.4, 1.775, 3.0, 8.0] {
            for cand in solver.candidates(rho) {
                let direct = solver.solve_pair(cand.sigma1, cand.sigma2, rho).unwrap();
                assert_eq!(cand, direct, "ρ={rho} ({}, {})", cand.sigma1, cand.sigma2);
            }
        }
    }

    #[test]
    fn saving_nonnegative_where_defined() {
        let solver = hera_xscale_solver();
        for rho in [1.4, 1.775, 3.0, 8.0] {
            if let Some(s) = solver.two_speed_saving(rho) {
                assert!((0.0..1.0).contains(&(s + 1e-12)), "ρ={rho}: saving {s}");
            }
        }
    }
}
