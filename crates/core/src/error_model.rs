//! Error processes (paper §2.1 and §5.1).
//!
//! Both silent and fail-stop errors arrive as independent Poisson processes:
//! the probability that an error of rate `λ` strikes during `t` seconds is
//! `p(t) = 1 − e^(−λt)`.
//!
//! * **Silent errors** (silent data corruptions) strike during computation
//!   and are only detected by the verification at the end of the pattern.
//! * **Fail-stop errors** (crashes) strike during computation *and*
//!   verification and interrupt the execution immediately.
//! * Neither strikes during checkpoint or recovery (paper assumption).

use crate::validate::{non_negative, ModelError};
use serde::{Deserialize, Serialize};

/// Probability that an exponential error of rate `lambda` strikes within
/// `t` seconds: `1 − e^(−λt)`.
///
/// Uses `exp_m1` for accuracy when `λt` is tiny.
#[inline]
pub fn strike_probability(lambda: f64, t: f64) -> f64 {
    -(-lambda * t).exp_m1()
}

/// Expected time lost when a fail-stop error interrupts an execution that
/// would have lasted `t` seconds, conditioned on the error striking within
/// those `t` seconds (paper §5.1, from Hérault & Robert \[14\]):
///
/// `Tlost(t) = 1/λ − t / (e^{λt} − 1)`.
///
/// As `λt → 0` this tends to `t/2` (errors strike uniformly, half the
/// interval is lost on average); the implementation switches to the series
/// expansion for tiny `λt` to avoid catastrophic cancellation.
#[inline]
pub fn expected_time_lost(lambda: f64, t: f64) -> f64 {
    let x = lambda * t;
    if x < 1e-6 {
        // 1/λ − t/(e^x − 1) = t·(1/x − 1/(e^x−1)) ≈ t·(1/2 − x/12 + x³/720)
        t * (0.5 - x / 12.0 + x * x * x / 720.0)
    } else {
        1.0 / lambda - t / x.exp_m1()
    }
}

/// Arrival rates of the two error sources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorRates {
    /// Silent-error rate `λˢ` (1/s).
    pub silent: f64,
    /// Fail-stop-error rate `λᶠ` (1/s).
    pub fail_stop: f64,
}

impl ErrorRates {
    /// Creates validated rates.
    ///
    /// # Errors
    /// [`ModelError::NonNegative`] on negative/non-finite rates.
    pub fn new(silent: f64, fail_stop: f64) -> Result<Self, ModelError> {
        Ok(ErrorRates {
            silent: non_negative("silent rate", silent)?,
            fail_stop: non_negative("fail-stop rate", fail_stop)?,
        })
    }

    /// Silent errors only (rate `λ`), the paper's main model.
    pub fn silent_only(lambda: f64) -> Result<Self, ModelError> {
        ErrorRates::new(lambda, 0.0)
    }

    /// Fail-stop errors only (rate `λ`), the model of Theorem 2.
    pub fn fail_stop_only(lambda: f64) -> Result<Self, ModelError> {
        ErrorRates::new(0.0, lambda)
    }

    /// Splits a total rate `λ` into a fail-stop fraction `f` and a silent
    /// fraction `s = 1 − f` (paper §5.2): `λᶠ = fλ`, `λˢ = (1−f)λ`.
    ///
    /// # Errors
    /// [`ModelError::InvalidFraction`] if `f ∉ \[0, 1\]`.
    pub fn from_total(lambda: f64, fail_stop_fraction: f64) -> Result<Self, ModelError> {
        let lambda = non_negative("total rate", lambda)?;
        if !(0.0..=1.0).contains(&fail_stop_fraction) || !fail_stop_fraction.is_finite() {
            return Err(ModelError::InvalidFraction {
                value: fail_stop_fraction,
            });
        }
        ErrorRates::new(
            lambda * (1.0 - fail_stop_fraction),
            lambda * fail_stop_fraction,
        )
    }

    /// Total error rate `λ = λˢ + λᶠ`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.silent + self.fail_stop
    }

    /// Platform MTBF `µ = 1/λ` (infinite when both rates are 0).
    #[inline]
    pub fn mtbf(&self) -> f64 {
        1.0 / self.total()
    }

    /// Fail-stop fraction `f = λᶠ/λ` (0 when both rates are 0).
    #[inline]
    pub fn fail_stop_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.fail_stop / total
        }
    }

    /// Silent fraction `s = 1 − f`.
    #[inline]
    pub fn silent_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.silent / total
        }
    }

    /// Probability a silent error strikes within `t` seconds.
    #[inline]
    pub fn p_silent(&self, t: f64) -> f64 {
        strike_probability(self.silent, t)
    }

    /// Probability a fail-stop error strikes within `t` seconds.
    #[inline]
    pub fn p_fail_stop(&self, t: f64) -> f64 {
        strike_probability(self.fail_stop, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strike_probability_basics() {
        assert_eq!(strike_probability(0.0, 100.0), 0.0);
        assert_eq!(strike_probability(1.0, 0.0), 0.0);
        let p = strike_probability(1e-6, 1e6);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // Tiny λt: p ≈ λt.
        let p_small = strike_probability(1e-9, 1.0);
        assert!((p_small - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn time_lost_limits() {
        // λt → 0 ⇒ Tlost → t/2.
        let t = 100.0;
        let tl = expected_time_lost(1e-12, t);
        assert!((tl - t / 2.0).abs() < 1e-6);
        // Large λt ⇒ Tlost → 1/λ.
        let tl2 = expected_time_lost(1.0, 1e9);
        assert!((tl2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_lost_series_matches_closed_form_at_crossover() {
        let lambda = 1e-4_f64;
        // Around x = λt = 1e-6, both branches must agree.
        for &t in &[0.009_f64, 0.0099, 0.01, 0.0101, 0.02] {
            let x = lambda * t;
            let series = t * (0.5 - x / 12.0 + x * x * x / 720.0);
            let closed = 1.0 / lambda - t / x.exp_m1();
            // The closed form itself loses ~ε/x relative precision to
            // cancellation near the crossover, which bounds the comparison.
            assert!(
                (series - closed).abs() < 1e-8 * t,
                "mismatch at x = {x}: {series} vs {closed}"
            );
        }
    }

    #[test]
    fn from_total_splits_rates() {
        let r = ErrorRates::from_total(1e-5, 0.25).unwrap();
        assert!((r.fail_stop - 2.5e-6).abs() < 1e-18);
        assert!((r.silent - 7.5e-6).abs() < 1e-18);
        assert!((r.total() - 1e-5).abs() < 1e-18);
        assert!((r.fail_stop_fraction() - 0.25).abs() < 1e-12);
        assert!((r.silent_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_total_rejects_bad_fraction() {
        assert!(ErrorRates::from_total(1e-5, -0.1).is_err());
        assert!(ErrorRates::from_total(1e-5, 1.5).is_err());
        assert!(ErrorRates::from_total(1e-5, f64::NAN).is_err());
    }

    #[test]
    fn silent_only_and_fail_stop_only() {
        let s = ErrorRates::silent_only(3.38e-6).unwrap();
        assert_eq!(s.fail_stop, 0.0);
        assert_eq!(s.silent_fraction(), 1.0);
        let f = ErrorRates::fail_stop_only(3.38e-6).unwrap();
        assert_eq!(f.silent, 0.0);
        assert_eq!(f.fail_stop_fraction(), 1.0);
    }

    #[test]
    fn mtbf_is_reciprocal_of_total() {
        let r = ErrorRates::silent_only(2e-6).unwrap();
        assert!((r.mtbf() - 5e5).abs() < 1e-6);
        let none = ErrorRates::new(0.0, 0.0).unwrap();
        assert!(none.mtbf().is_infinite());
        assert_eq!(none.fail_stop_fraction(), 0.0);
        assert_eq!(none.silent_fraction(), 0.0);
    }

    #[test]
    fn probabilities_split_by_source() {
        let r = ErrorRates::new(1e-3, 2e-3).unwrap();
        assert!((r.p_silent(100.0) - strike_probability(1e-3, 100.0)).abs() < 1e-15);
        assert!((r.p_fail_stop(100.0) - strike_probability(2e-3, 100.0)).abs() < 1e-15);
    }
}
