//! Extended model with **both fail-stop and silent errors** (paper §5).
//!
//! Fail-stop errors (rate `λᶠ`) strike during computation *and*
//! verification and interrupt the execution immediately, losing
//! `Tlost(W+V, σ) = 1/λᶠ − ((W+V)/σ)/(e^{λᶠ(W+V)/σ} − 1)` in expectation.
//! Silent errors (rate `λˢ`) strike during computation only and are caught
//! by the verification. Neither strikes during checkpoint or recovery.
//!
//! The expected time and energy are computed from the defining recursion
//! (Equation 8), which is numerically stable and exact:
//!
//! ```text
//! T(W,σ₁,σ₂) = pᶠ₁·(Tlost(W+V,σ₁) + R + T(W,σ₂,σ₂))
//!            + (1−pᶠ₁)·[ (W+V)/σ₁ + pˢ₁·(R + T(W,σ₂,σ₂)) + (1−pˢ₁)·C ]
//! ```
//!
//! The paper also prints closed forms (Propositions 4 and 5) obtained by
//! unrolling this recursion; [`MixedModel::expected_time_prop4`] and
//! [`MixedModel::expected_energy_prop5`] transcribe them verbatim so the
//! two derivations can be compared (see the `prop4_matches_recursion`
//! tests and EXPERIMENTS.md).

use crate::cost::ResilienceCosts;
use crate::error_model::{expected_time_lost, ErrorRates};
use crate::power::PowerModel;
use serde::{Deserialize, Serialize};

/// `p * x` that treats a zero probability as absorbing (`0 × ∞ = 0`),
/// so that expectations stay well-defined when a branch is impossible but
/// its conditional value diverges (e.g. `ps = 0` with an infinite
/// re-execution time at astronomically large `W`).
#[inline]
fn weighted(p: f64, x: f64) -> f64 {
    if p == 0.0 {
        0.0
    } else {
        p * x
    }
}

/// Analytic model of a platform subject to fail-stop **and** silent errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedModel {
    /// Arrival rates of the two error sources.
    pub rates: ErrorRates,
    /// Checkpoint / verification / recovery costs.
    pub costs: ResilienceCosts,
    /// Platform power parameters.
    pub power: PowerModel,
}

impl MixedModel {
    /// Creates the model (rates/costs/power are pre-validated types).
    pub fn new(rates: ErrorRates, costs: ResilienceCosts, power: PowerModel) -> Self {
        MixedModel {
            rates,
            costs,
            power,
        }
    }

    /// Probability a fail-stop error interrupts the execution+verification
    /// of a pattern of size `w` at speed `sigma`.
    #[inline]
    pub fn p_fail(&self, w: f64, sigma: f64) -> f64 {
        self.rates
            .p_fail_stop((w + self.costs.verification) / sigma)
    }

    /// Probability a silent error corrupts the computation of `w` work at
    /// speed `sigma`.
    #[inline]
    pub fn p_silent(&self, w: f64, sigma: f64) -> f64 {
        self.rates.p_silent(w / sigma)
    }

    /// Expected time lost to a fail-stop interrupt of the `(W+V)/σ` phase,
    /// conditioned on the interrupt happening.
    #[inline]
    pub fn t_lost(&self, w: f64, sigma: f64) -> f64 {
        expected_time_lost(self.rates.fail_stop, (w + self.costs.verification) / sigma)
    }

    /// Expected time of a pattern executed entirely at speed `sigma`
    /// (the re-execution fixed point `T(W,σ,σ)`).
    pub fn expected_time_single(&self, w: f64, sigma: f64) -> f64 {
        let c = self.costs.checkpoint;
        let r = self.costs.recovery;
        let v = self.costs.verification;
        let pf = self.p_fail(w, sigma);
        let ps = self.p_silent(w, sigma);
        let tl = self.t_lost(w, sigma);
        // T = pf(Tl + R + T) + (1−pf)[(W+V)/σ + ps(R + T) + (1−ps)C]
        // ⇒ T·(1−pf)(1−ps) = pf(Tl+R) + (1−pf)[(W+V)/σ + ps·R + (1−ps)C]
        let success = (1.0 - pf) * (1.0 - ps);
        let rhs = pf * (tl + r) + (1.0 - pf) * ((w + v) / sigma + ps * r + (1.0 - ps) * c);
        rhs / success
    }

    /// Proposition 4 (via the recursion) — expected time of a pattern with
    /// first execution at `sigma1` and re-executions at `sigma2`.
    pub fn expected_time(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        let c = self.costs.checkpoint;
        let r = self.costs.recovery;
        let v = self.costs.verification;
        let pf1 = self.p_fail(w, sigma1);
        let ps1 = self.p_silent(w, sigma1);
        let tl1 = self.t_lost(w, sigma1);
        let t2 = self.expected_time_single(w, sigma2);
        weighted(pf1, tl1 + r + t2)
            + weighted(
                1.0 - pf1,
                (w + v) / sigma1 + weighted(ps1, r + t2) + (1.0 - ps1) * c,
            )
    }

    /// Expected energy of a pattern executed entirely at speed `sigma`.
    pub fn expected_energy_single(&self, w: f64, sigma: f64) -> f64 {
        let c = self.costs.checkpoint;
        let r = self.costs.recovery;
        let v = self.costs.verification;
        let p_cpu = self.power.compute_power(sigma);
        let p_io = self.power.io_power();
        let pf = self.p_fail(w, sigma);
        let ps = self.p_silent(w, sigma);
        let tl = self.t_lost(w, sigma);
        let success = (1.0 - pf) * (1.0 - ps);
        let rhs = pf * (tl * p_cpu + r * p_io)
            + (1.0 - pf) * ((w + v) / sigma * p_cpu + ps * r * p_io + (1.0 - ps) * c * p_io);
        rhs / success
    }

    /// Proposition 5 (via the recursion) — expected energy with two speeds.
    pub fn expected_energy(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        let c = self.costs.checkpoint;
        let r = self.costs.recovery;
        let v = self.costs.verification;
        let p1 = self.power.compute_power(sigma1);
        let p_io = self.power.io_power();
        let pf1 = self.p_fail(w, sigma1);
        let ps1 = self.p_silent(w, sigma1);
        let tl1 = self.t_lost(w, sigma1);
        let e2 = self.expected_energy_single(w, sigma2);
        weighted(pf1, tl1 * p1 + r * p_io + e2)
            + weighted(
                1.0 - pf1,
                (w + v) / sigma1 * p1 + weighted(ps1, r * p_io + e2) + (1.0 - ps1) * c * p_io,
            )
    }

    /// Exact time overhead `T(W,σ₁,σ₂)/W`.
    #[inline]
    pub fn time_overhead(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        self.expected_time(w, sigma1, sigma2) / w
    }

    /// Exact energy overhead `E(W,σ₁,σ₂)/W`.
    #[inline]
    pub fn energy_overhead(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        self.expected_energy(w, sigma1, sigma2) / w
    }

    /// Proposition 4 transcribed verbatim from the paper (Equation 7).
    ///
    /// Requires `λᶠ > 0` (the closed form divides by `λᶠ`; use
    /// [`expected_time`](Self::expected_time) for the silent-only limit).
    pub fn expected_time_prop4(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        let lf = self.rates.fail_stop;
        let ls = self.rates.silent;
        let c = self.costs.checkpoint;
        let r = self.costs.recovery;
        let v = self.costs.verification;
        let both1 = (lf * (w + v) + ls * w) / sigma1; // exponent at σ1
        let both2 = (lf * (w + v) + ls * w) / sigma2; // exponent at σ2
        let p1 = -((-both1).exp_m1()); // 1 − e^{−(λf(W+V)+λsW)/σ1}
        c + p1 * both2.exp() * r
            + p1 * (ls * w / sigma2).exp() * v / sigma2
            + (1.0 / lf) * (-((-lf * (w + v) / sigma1).exp_m1()))
            + (1.0 / lf) * p1 * (ls * w / sigma2).exp() * ((lf * (w + v) / sigma2).exp() - 1.0)
    }

    /// Proposition 5 transcribed verbatim from the paper.
    ///
    /// Requires `λᶠ > 0`.
    pub fn expected_energy_prop5(&self, w: f64, sigma1: f64, sigma2: f64) -> f64 {
        let lf = self.rates.fail_stop;
        let ls = self.rates.silent;
        let c = self.costs.checkpoint;
        let r = self.costs.recovery;
        let v = self.costs.verification;
        let p_io = self.power.io_power();
        let p1 = self.power.compute_power(sigma1);
        let p2 = self.power.compute_power(sigma2);
        let both1 = (lf * (w + v) + ls * w) / sigma1;
        let both2 = (lf * (w + v) + ls * w) / sigma2;
        let q1 = -((-both1).exp_m1());
        c * p_io
            + q1 * both2.exp() * r * p_io
            + q1 * (ls * w / sigma2).exp() * v / sigma2 * p2
            + (1.0 / lf) * q1 * (ls * w / sigma2).exp() * ((lf * (w + v) / sigma2).exp() - 1.0) * p2
            + (1.0 / lf) * (-((-lf * (w + v) / sigma1).exp_m1())) * p1
    }

    /// Sweep helper: a copy with different rates.
    #[must_use]
    pub fn with_rates(mut self, rates: ErrorRates) -> Self {
        self.rates = rates;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::SilentModel;

    fn base(rates: ErrorRates) -> MixedModel {
        MixedModel::new(
            rates,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
    }

    #[test]
    fn silent_only_limit_matches_silent_model() {
        // λf → 0: the mixed recursion must converge to Propositions 1–3.
        let lambda = 3.38e-6;
        let silent = SilentModel::new(
            lambda,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap();
        let mixed = base(ErrorRates::silent_only(lambda).unwrap());
        for (w, s1, s2) in [(2764.0, 0.4, 0.4), (5000.0, 0.6, 1.0), (800.0, 1.0, 0.15)] {
            let ts = silent.expected_time(w, s1, s2);
            let tm = mixed.expected_time(w, s1, s2);
            assert!((ts - tm).abs() < 1e-9 * ts, "T: {ts} vs {tm}");
            let es = silent.expected_energy(w, s1, s2);
            let em = mixed.expected_energy(w, s1, s2);
            assert!((es - em).abs() < 1e-9 * es, "E: {es} vs {em}");
        }
    }

    #[test]
    fn recursion_fixed_point_two_speeds() {
        let m = base(ErrorRates::new(2e-5, 1e-5).unwrap());
        let (w, s1, s2) = (4000.0, 0.6, 0.9);
        let pf1 = m.p_fail(w, s1);
        let ps1 = m.p_silent(w, s1);
        let t2 = m.expected_time_single(w, s2);
        let lhs = m.expected_time(w, s1, s2);
        let rhs = pf1 * (m.t_lost(w, s1) + m.costs.recovery + t2)
            + (1.0 - pf1)
                * ((w + m.costs.verification) / s1
                    + ps1 * (m.costs.recovery + t2)
                    + (1.0 - ps1) * m.costs.checkpoint);
        assert!((lhs - rhs).abs() < 1e-9 * lhs);
    }

    #[test]
    fn single_speed_fixed_point() {
        let m = base(ErrorRates::new(5e-5, 2e-5).unwrap());
        let (w, s) = (2500.0, 0.8);
        let t = m.expected_time_single(w, s);
        let pf = m.p_fail(w, s);
        let ps = m.p_silent(w, s);
        let rhs = pf * (m.t_lost(w, s) + m.costs.recovery + t)
            + (1.0 - pf)
                * ((w + m.costs.verification) / s
                    + ps * (m.costs.recovery + t)
                    + (1.0 - ps) * m.costs.checkpoint);
        assert!((t - rhs).abs() < 1e-9 * t);
    }

    #[test]
    fn energy_single_speed_fixed_point() {
        let m = base(ErrorRates::new(5e-5, 2e-5).unwrap());
        let (w, s) = (2500.0, 0.8);
        let e = m.expected_energy_single(w, s);
        let pf = m.p_fail(w, s);
        let ps = m.p_silent(w, s);
        let rhs = pf
            * (m.t_lost(w, s) * m.power.compute_power(s)
                + m.costs.recovery * m.power.io_power()
                + e)
            + (1.0 - pf)
                * ((w + m.costs.verification) / s * m.power.compute_power(s)
                    + ps * (m.costs.recovery * m.power.io_power() + e)
                    + (1.0 - ps) * m.costs.checkpoint * m.power.io_power());
        assert!((e - rhs).abs() < 1e-9 * e);
    }

    #[test]
    fn fail_stop_only_time_has_half_period_loss_shape() {
        // Exact algebra for fail-stop only at one speed:
        // T = phase + C + pf/(1−pf)·(Tlost + R), so to first order
        // T ≈ C + phase + λ·phase·(phase/2 + R): an error strikes with
        // probability λ·phase and loses half the phase plus a recovery.
        let lambda = 1e-8;
        let m = base(ErrorRates::fail_stop_only(lambda).unwrap());
        let (w, s) = (10_000.0, 1.0);
        let phase = (w + m.costs.verification) / s;
        let t = m.expected_time_single(w, s);
        let approx = m.costs.checkpoint + phase + lambda * phase * (phase / 2.0 + m.costs.recovery);
        // Second-order remainder is O((λ·phase)²·phase) ≈ 1e-4.
        assert!((t - approx).abs() < 1e-3, "t = {t}, first-order = {approx}");
    }

    #[test]
    fn prop4_printed_form_exceeds_recursion_by_exactly_one_verification_term() {
        // The research report's printed Proposition 4 carries an extra
        // `q₁·e^{λsW/σ₂}·V/σ₂` relative to its own defining recursion
        // (Equation 8): in the λf → 0 limit the printed form does NOT
        // reduce to Proposition 2, while the recursion does (see
        // `silent_only_limit_matches_silent_model`). We therefore treat
        // the recursion as ground truth and pin the discrepancy here.
        let m = base(ErrorRates::new(5e-6, 1e-5).unwrap());
        for (w, s1, s2) in [(5000.0, 0.5, 1.0), (2000.0, 1.0, 0.5), (8000.0, 0.8, 0.8)] {
            let rec = m.expected_time(w, s1, s2);
            let cf = m.expected_time_prop4(w, s1, s2);
            let both1 = (m.rates.fail_stop * (w + m.costs.verification) + m.rates.silent * w) / s1;
            let q1 = -((-both1).exp_m1());
            let extra = q1 * (m.rates.silent * w / s2).exp() * m.costs.verification / s2;
            assert!(
                ((cf - rec) - extra).abs() < 1e-9 * rec,
                "({w},{s1},{s2}): recursion {rec}, Prop 4 {cf}, predicted extra {extra}"
            );
        }
    }

    #[test]
    fn prop5_printed_form_exceeds_recursion_by_exactly_one_verification_term() {
        // Same discrepancy as Proposition 4, weighted by the power drawn
        // while verifying at σ₂.
        let m = base(ErrorRates::new(5e-6, 1e-5).unwrap());
        for (w, s1, s2) in [(5000.0, 0.5, 1.0), (2000.0, 1.0, 0.5)] {
            let rec = m.expected_energy(w, s1, s2);
            let cf = m.expected_energy_prop5(w, s1, s2);
            let both1 = (m.rates.fail_stop * (w + m.costs.verification) + m.rates.silent * w) / s1;
            let q1 = -((-both1).exp_m1());
            let extra = q1 * (m.rates.silent * w / s2).exp() * m.costs.verification / s2
                * m.power.compute_power(s2);
            assert!(
                ((cf - rec) - extra).abs() < 1e-9 * rec,
                "({w},{s1},{s2}): recursion {rec}, Prop 5 {cf}, predicted extra {extra}"
            );
        }
    }

    #[test]
    fn more_errors_cost_more_time_and_energy() {
        let lo = base(ErrorRates::new(1e-6, 1e-6).unwrap());
        let hi = base(ErrorRates::new(1e-4, 1e-4).unwrap());
        let (w, s1, s2) = (3000.0, 0.6, 0.8);
        assert!(lo.expected_time(w, s1, s2) < hi.expected_time(w, s1, s2));
        assert!(lo.expected_energy(w, s1, s2) < hi.expected_energy(w, s1, s2));
    }

    #[test]
    fn overheads_divide_by_w() {
        let m = base(ErrorRates::new(1e-5, 1e-5).unwrap());
        let (w, s1, s2) = (2000.0, 0.6, 0.9);
        assert!((m.time_overhead(w, s1, s2) * w - m.expected_time(w, s1, s2)).abs() < 1e-9);
        assert!((m.energy_overhead(w, s1, s2) * w - m.expected_energy(w, s1, s2)).abs() < 1e-6);
    }

    #[test]
    fn with_rates_replaces_rates() {
        let m = base(ErrorRates::new(1e-5, 1e-5).unwrap())
            .with_rates(ErrorRates::silent_only(9e-9).unwrap());
        assert_eq!(m.rates.fail_stop, 0.0);
        assert_eq!(m.rates.silent, 9e-9);
    }
}
