//! Resilience costs: checkpoint, verification, recovery (paper §2.1).

use crate::validate::{non_negative, ModelError};
use serde::{Deserialize, Serialize};

/// Checkpoint / verification / recovery costs of a platform.
///
/// * `checkpoint` (`C`, seconds) and `recovery` (`R`, seconds) are I/O bound
///   and do not scale with the CPU speed.
/// * `verification` (`V`, seconds **at full speed**) is a computation: at
///   speed `σ` it takes `V/σ` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceCosts {
    /// Checkpoint time `C` (s).
    pub checkpoint: f64,
    /// Verification time `V` at full speed (s).
    pub verification: f64,
    /// Recovery time `R` (s).
    pub recovery: f64,
}

impl ResilienceCosts {
    /// Creates validated costs.
    ///
    /// # Errors
    /// [`ModelError::NonNegative`] on negative or non-finite inputs.
    pub fn new(checkpoint: f64, verification: f64, recovery: f64) -> Result<Self, ModelError> {
        Ok(ResilienceCosts {
            checkpoint: non_negative("checkpoint", checkpoint)?,
            verification: non_negative("verification", verification)?,
            recovery: non_negative("recovery", recovery)?,
        })
    }

    /// Costs with `R = C` — the paper's default (§4.1: a read takes as long
    /// as a write).
    pub fn symmetric(checkpoint: f64, verification: f64) -> Self {
        ResilienceCosts {
            checkpoint: checkpoint.max(0.0),
            verification: verification.max(0.0),
            recovery: checkpoint.max(0.0),
        }
    }

    /// Verification time at speed `σ`: `V/σ` (s).
    #[inline]
    pub fn verification_time(&self, sigma: f64) -> f64 {
        self.verification / sigma
    }

    /// Returns a copy with a different checkpoint cost, keeping `R = C` if
    /// the costs were symmetric (sweep helper mirroring the paper's
    /// experiments, which keep `R = C` while varying `C`).
    #[must_use]
    pub fn with_checkpoint(mut self, checkpoint: f64) -> Self {
        let was_symmetric = self.recovery == self.checkpoint;
        self.checkpoint = checkpoint;
        if was_symmetric {
            self.recovery = checkpoint;
        }
        self
    }

    /// Returns a copy with a different verification cost (sweep helper).
    #[must_use]
    pub fn with_verification(mut self, verification: f64) -> Self {
        self.verification = verification;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_sets_recovery_to_checkpoint() {
        let c = ResilienceCosts::symmetric(300.0, 15.4);
        assert_eq!(c.checkpoint, 300.0);
        assert_eq!(c.recovery, 300.0);
        assert_eq!(c.verification, 15.4);
    }

    #[test]
    fn verification_scales_with_speed() {
        let c = ResilienceCosts::symmetric(300.0, 15.4);
        assert!((c.verification_time(1.0) - 15.4).abs() < 1e-12);
        assert!((c.verification_time(0.4) - 38.5).abs() < 1e-12);
    }

    #[test]
    fn with_checkpoint_preserves_symmetry() {
        let c = ResilienceCosts::symmetric(300.0, 15.4).with_checkpoint(1000.0);
        assert_eq!(c.recovery, 1000.0);
        let asym = ResilienceCosts::new(300.0, 15.4, 100.0)
            .unwrap()
            .with_checkpoint(1000.0);
        assert_eq!(asym.recovery, 100.0);
    }

    #[test]
    fn rejects_invalid() {
        assert!(ResilienceCosts::new(-1.0, 0.0, 0.0).is_err());
        assert!(ResilienceCosts::new(0.0, f64::NAN, 0.0).is_err());
        assert!(ResilienceCosts::new(0.0, 0.0, -5.0).is_err());
    }

    #[test]
    fn zero_costs_are_valid() {
        let c = ResilienceCosts::new(0.0, 0.0, 0.0).unwrap();
        assert_eq!(c.verification_time(0.5), 0.0);
    }

    #[test]
    fn with_verification_replaces_only_v() {
        let c = ResilienceCosts::symmetric(300.0, 15.4).with_verification(99.0);
        assert_eq!(c.verification, 99.0);
        assert_eq!(c.checkpoint, 300.0);
        assert_eq!(c.recovery, 300.0);
    }
}
