//! Time-only optimization (the classical problem, used as a baseline).
//!
//! Minimizes the expected *time* per unit of work over the pattern size and
//! speed pair, with no energy objective. To first order, for a fixed pair
//! the minimum is `ρᵢⱼ` (Equation 6) attained at the minimizer of the time
//! coefficients; over pairs, the fastest speeds win, but the structure is
//! kept general so that the solver is also usable with restricted sets.

use crate::approx::FirstOrder;
use crate::pattern::SilentModel;
use crate::speed::SpeedSet;
use serde::{Deserialize, Serialize};

/// Result of the time-only optimization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinTimeSolution {
    /// First-execution speed.
    pub sigma1: f64,
    /// Re-execution speed.
    pub sigma2: f64,
    /// Time-optimal pattern size.
    pub w_opt: f64,
    /// Achieved first-order time overhead (= `ρᵢⱼ` of the chosen pair).
    pub time_overhead: f64,
    /// First-order energy overhead at the time-optimal point (for
    /// comparison with BiCrit solutions).
    pub energy_overhead: f64,
}

/// Solver for the time-only problem over a discrete speed set.
#[derive(Debug, Clone)]
pub struct MinTimeSolver {
    model: SilentModel,
    speeds: SpeedSet,
}

impl MinTimeSolver {
    /// Creates a solver.
    pub fn new(model: SilentModel, speeds: SpeedSet) -> Self {
        MinTimeSolver { model, speeds }
    }

    /// The underlying analytic model.
    pub fn model(&self) -> &SilentModel {
        &self.model
    }

    /// The available speeds.
    pub fn speeds(&self) -> &SpeedSet {
        &self.speeds
    }

    /// Time-optimal pattern size and overhead for a fixed pair: the
    /// minimizer of Equation (2). Returns `None` when `λ = 0` (unbounded).
    pub fn solve_pair(&self, s1: f64, s2: f64) -> Option<MinTimeSolution> {
        let co = FirstOrder::time_coefficients(&self.model, s1, s2);
        let w = co.minimizer();
        if !w.is_finite() || w <= 0.0 {
            return None;
        }
        Some(MinTimeSolution {
            sigma1: s1,
            sigma2: s2,
            w_opt: w,
            time_overhead: co.eval(w),
            energy_overhead: FirstOrder::energy_overhead(&self.model, w, s1, s2),
        })
    }

    /// Best pair for expected time (ties to slower speeds for determinism).
    pub fn solve(&self) -> Option<MinTimeSolution> {
        self.speeds
            .pairs()
            .filter_map(|(s1, s2)| self.solve_pair(s1, s2))
            .min_by(|a, b| {
                (a.time_overhead, a.sigma1, a.sigma2)
                    .partial_cmp(&(b.time_overhead, b.sigma1, b.sigma2))
                    .expect("finite overheads")
            })
    }

    /// Best single-speed (σ₂ = σ₁) solution for expected time.
    pub fn solve_one_speed(&self) -> Option<MinTimeSolution> {
        self.speeds
            .diagonal_pairs()
            .filter_map(|(s, _)| self.solve_pair(s, s))
            .min_by(|a, b| {
                (a.time_overhead, a.sigma1)
                    .partial_cmp(&(b.time_overhead, b.sigma1))
                    .expect("finite overheads")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::power::PowerModel;
    use crate::theorem1;

    fn solver() -> MinTimeSolver {
        let model = SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap();
        MinTimeSolver::new(
            model,
            SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap(),
        )
    }

    #[test]
    fn fastest_speeds_minimize_time() {
        let best = solver().solve().unwrap();
        assert_eq!(best.sigma1, 1.0);
        assert_eq!(best.sigma2, 1.0);
    }

    #[test]
    fn pair_overhead_equals_rho_min() {
        let s = solver();
        for (s1, s2) in [(0.4, 0.4), (0.6, 1.0), (1.0, 0.15)] {
            let sol = s.solve_pair(s1, s2).unwrap();
            let rho = theorem1::rho_min(s.model(), s1, s2);
            assert!(
                (sol.time_overhead - rho).abs() < 1e-12,
                "({s1},{s2}): {} vs {rho}",
                sol.time_overhead
            );
        }
    }

    #[test]
    fn one_speed_no_better_than_two_speed() {
        let s = solver();
        let two = s.solve().unwrap();
        let one = s.solve_one_speed().unwrap();
        assert!(two.time_overhead <= one.time_overhead + 1e-12);
        assert_eq!(one.sigma1, one.sigma2);
    }

    #[test]
    fn lambda_zero_yields_none() {
        let m = solver().model().with_lambda(0.0);
        let s = MinTimeSolver::new(m, SpeedSet::new(vec![0.5, 1.0]).unwrap());
        assert!(s.solve().is_none());
        assert_eq!(s.speeds().len(), 2);
    }
}
