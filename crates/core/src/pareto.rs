//! Time/energy Pareto frontier of the bi-criteria problem.
//!
//! BiCrit fixes a bound `ρ` and minimizes energy; sweeping `ρ` from its
//! smallest feasible value upward traces the full trade-off curve between
//! expected time per work unit and expected energy per work unit. Each
//! frontier point records which speed pair and pattern size achieve it —
//! making visible the paper's observation that *many* speed pairs are
//! optimal somewhere along the curve.

use crate::bicrit::BiCritSolver;
use serde::{Deserialize, Serialize};

/// One point of the time/energy trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The performance bound that generated this point.
    pub rho: f64,
    /// Achieved time overhead `T/W` (≤ `rho`).
    pub time_overhead: f64,
    /// Achieved energy overhead `E/W`.
    pub energy_overhead: f64,
    /// First-execution speed.
    pub sigma1: f64,
    /// Re-execution speed.
    pub sigma2: f64,
    /// Optimal pattern size.
    pub w_opt: f64,
}

/// The computed frontier: non-dominated `(time, energy)` points, sorted by
/// increasing time overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoFrontier {
    /// Frontier points, ascending in time overhead.
    pub points: Vec<ParetoPoint>,
}

impl ParetoFrontier {
    /// Traces the frontier by sweeping `n` bounds geometrically from the
    /// smallest feasible `ρ` up to `rho_max`, then pruning dominated
    /// points.
    ///
    /// Returns an empty frontier when even `rho_max` is infeasible.
    pub fn compute(solver: &BiCritSolver, rho_max: f64, n: usize) -> ParetoFrontier {
        assert!(n >= 2, "need at least two sweep points");
        let rho_min = solver.min_feasible_rho() * (1.0 + 1e-9);
        if !rho_min.is_finite() || rho_min > rho_max {
            return ParetoFrontier { points: vec![] };
        }
        let ratio = (rho_max / rho_min).ln();
        let mut raw: Vec<ParetoPoint> = (0..n)
            .filter_map(|i| {
                let rho = rho_min * (ratio * i as f64 / (n - 1) as f64).exp();
                solver.solve(rho).map(|s| ParetoPoint {
                    rho,
                    time_overhead: s.time_overhead,
                    energy_overhead: s.energy_overhead,
                    sigma1: s.sigma1,
                    sigma2: s.sigma2,
                    w_opt: s.w_opt,
                })
            })
            .collect();
        raw.sort_by(|a, b| {
            (a.time_overhead, a.energy_overhead)
                .partial_cmp(&(b.time_overhead, b.energy_overhead))
                .expect("finite overheads")
        });
        // Prune: keep points whose energy strictly improves on everything
        // faster (standard staircase filter).
        let mut points: Vec<ParetoPoint> = Vec::with_capacity(raw.len());
        let mut best_energy = f64::INFINITY;
        for p in raw {
            if p.energy_overhead < best_energy * (1.0 - 1e-12) {
                best_energy = p.energy_overhead;
                points.push(p);
            }
        }
        ParetoFrontier { points }
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty (problem infeasible at every bound).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The distinct speed pairs appearing on the frontier, in order of
    /// first appearance (slow → fast end).
    pub fn speed_pairs(&self) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = vec![];
        for p in &self.points {
            let pair = (p.sigma1, p.sigma2);
            if out.last() != Some(&pair) && !out.contains(&pair) {
                out.push(pair);
            }
        }
        out
    }

    /// True iff no point dominates another (both overheads ≤, one <).
    pub fn is_non_dominated(&self) -> bool {
        for (i, a) in self.points.iter().enumerate() {
            for b in self.points.iter().skip(i + 1) {
                let a_dom =
                    a.time_overhead <= b.time_overhead && a.energy_overhead <= b.energy_overhead;
                let b_dom =
                    b.time_overhead <= a.time_overhead && b.energy_overhead <= a.energy_overhead;
                if a_dom || b_dom {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::pattern::SilentModel;
    use crate::power::PowerModel;
    use crate::speed::SpeedSet;

    fn solver() -> BiCritSolver {
        let model = SilentModel::new(
            3.38e-6,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap();
        BiCritSolver::new(
            model,
            SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap(),
        )
    }

    #[test]
    fn frontier_is_non_dominated_and_monotone() {
        let f = ParetoFrontier::compute(&solver(), 10.0, 200);
        assert!(f.len() >= 5, "expected a rich frontier, got {}", f.len());
        assert!(f.is_non_dominated());
        for w in f.points.windows(2) {
            assert!(w[1].time_overhead > w[0].time_overhead);
            assert!(w[1].energy_overhead < w[0].energy_overhead);
        }
    }

    #[test]
    fn frontier_points_respect_their_bound() {
        let f = ParetoFrontier::compute(&solver(), 10.0, 100);
        for p in &f.points {
            assert!(p.time_overhead <= p.rho * (1.0 + 1e-9));
        }
    }

    #[test]
    fn multiple_speed_pairs_appear_along_the_frontier() {
        // The paper's §4.2 point: different ρ values elect different pairs.
        let f = ParetoFrontier::compute(&solver(), 10.0, 400);
        let pairs = f.speed_pairs();
        assert!(
            pairs.len() >= 3,
            "expected several optimal pairs along the frontier: {pairs:?}"
        );
        // The slow end (loose ρ) is the energy-optimal pair (0.4, 0.4).
        assert!(pairs.contains(&(0.4, 0.4)));
        // No pair with σ1 = 0.15 is ever on the frontier.
        assert!(pairs.iter().all(|&(s1, _)| s1 != 0.15));
    }

    #[test]
    fn infeasible_everywhere_gives_empty_frontier() {
        let s = solver();
        let f = ParetoFrontier::compute(&s, s.min_feasible_rho() * 0.5, 10);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn fastest_end_approaches_min_feasible_rho() {
        let s = solver();
        let f = ParetoFrontier::compute(&s, 10.0, 200);
        let fastest = &f.points[0];
        assert!(fastest.time_overhead <= s.min_feasible_rho() * 1.05);
    }
}
